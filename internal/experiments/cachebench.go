package experiments

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"tss/internal/cache"
	"tss/internal/chirp"
	"tss/internal/netsim"
	"tss/internal/obs"
	"tss/internal/vfs"
)

// The cache ablation: the same attr/dirent/read syscall mix driven
// over Chirp three ways — cache disabled, cache cold (first touch,
// paying fills and lease grants), and cache warm (every tier hot).
// The disabled-vs-warm deltas in server RPCs and per-op latency are
// the numbers the caching tier exists to move: a network filesystem's
// syscall amplification, measured and then deleted.

// CacheBenchConfig sizes the cache ablation benchmark.
type CacheBenchConfig struct {
	// Files is the number of files in the working set.
	Files int
	// FileSize is the size of each file in bytes.
	FileSize int
	// Rounds is how many times the warm pass repeats the mix.
	Rounds int
	// Link shapes the client↔server links.
	Link netsim.LinkProfile
	// Quick marks the reduced configuration in the report.
	Quick bool
}

// DefaultCacheBench returns the full-size configuration; quick shrinks
// it for a fast pass.
func DefaultCacheBench(quick bool) CacheBenchConfig {
	cfg := CacheBenchConfig{
		Files:    24,
		FileSize: 32 << 10,
		Rounds:   8,
		Link:     netsim.GigE,
	}
	if quick {
		cfg.Files, cfg.FileSize, cfg.Rounds = 8, 8<<10, 4
		cfg.Quick = true
	}
	return cfg
}

// CacheProfile is one ablation arm's measurement.
type CacheProfile struct {
	Name string `json:"name"`
	// Ops is the number of syscalls the mix issued (stat + readdir +
	// open/read/close per file per round).
	Ops int64 `json:"ops"`
	// RPCs is how many requests actually reached the chirp server.
	RPCs int64 `json:"rpcs"`
	// WallMS is the wall-clock time of the pass.
	WallMS float64 `json:"wall_ms"`
	// MeanUS is WallMS amortized per op.
	MeanUS float64 `json:"mean_us"`
}

// CacheBenchReport is the ablation result, with the two derived ratios
// the acceptance bar reads.
type CacheBenchReport struct {
	Name     string         `json:"name"`
	Quick    bool           `json:"quick"`
	Files    int            `json:"files"`
	FileSize int            `json:"file_size"`
	Rounds   int            `json:"rounds"`
	Profiles []CacheProfile `json:"profiles"`
	// RPCReduction is disabled RPCs per warm-pass RPCs (per round).
	RPCReduction float64 `json:"rpc_reduction"`
	// LatencyGain is disabled mean op latency per warm mean op latency.
	LatencyGain float64 `json:"latency_gain"`
	// Cache is the warm stack's cache counter snapshot.
	Cache cache.Stats `json:"cache"`
}

// JSON renders the report for BENCH_chirp.json.
func (r *CacheBenchReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Render renders the ablation as a table.
func (r *CacheBenchReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cache ablation: %d files × %d B, %d warm rounds\n", r.Files, r.FileSize, r.Rounds)
	fmt.Fprintf(&b, "%-10s %8s %8s %10s %10s\n", "PROFILE", "OPS", "RPCS", "WALL", "MEAN/OP")
	for _, p := range r.Profiles {
		fmt.Fprintf(&b, "%-10s %8d %8d %8.1fms %8.1fµs\n", p.Name, p.Ops, p.RPCs, p.WallMS, p.MeanUS)
	}
	fmt.Fprintf(&b, "rpc reduction (disabled/warm): %.1fx\n", r.RPCReduction)
	fmt.Fprintf(&b, "latency gain  (disabled/warm): %.1fx\n", r.LatencyGain)
	fmt.Fprintf(&b, "cache: %d/%d attr, %d/%d dirent, %d/%d page hits/misses, %d revalidations\n",
		r.Cache.AttrHits, r.Cache.AttrMisses, r.Cache.DirentHits, r.Cache.DirentMisses,
		r.Cache.PageHits, r.Cache.PageMisses, r.Cache.Revalidations)
	return b.String()
}

// cacheMix drives one pass of the syscall mix and returns how many
// operations it issued.
func cacheMix(fs vfs.FileSystem, files, fileSize int) (int64, error) {
	var ops int64
	buf := make([]byte, 32<<10)
	for i := 0; i < files; i++ {
		p := fmt.Sprintf("/f%04d", i)
		if _, err := fs.Stat(p); err != nil {
			return ops, fmt.Errorf("stat %s: %w", p, err)
		}
		ops++
		if _, err := fs.ReadDir("/"); err != nil {
			return ops, fmt.Errorf("readdir: %w", err)
		}
		ops++
		f, err := fs.Open(p, vfs.O_RDONLY, 0)
		if err != nil {
			return ops, fmt.Errorf("open %s: %w", p, err)
		}
		var off int64
		for off < int64(fileSize) {
			n, err := f.Pread(buf, off)
			if err != nil {
				f.Close()
				return ops, fmt.Errorf("pread %s: %w", p, err)
			}
			if n == 0 {
				break
			}
			off += int64(n)
		}
		if err := f.Close(); err != nil {
			return ops, err
		}
		ops++
	}
	return ops, nil
}

// RunCacheBench measures the cache ablation. Each arm gets its own
// server so RPC counts are exactly attributable.
func RunCacheBench(cfg CacheBenchConfig) (*CacheBenchReport, error) {
	env := NewEnv()
	defer env.Close()

	rep := &CacheBenchReport{
		Name:     "cache-ablation",
		Quick:    cfg.Quick,
		Files:    cfg.Files,
		FileSize: cfg.FileSize,
		Rounds:   cfg.Rounds,
	}

	seed := func(cli *chirp.Client) error {
		payload := make([]byte, cfg.FileSize)
		for i := range payload {
			payload[i] = byte(i)
		}
		for i := 0; i < cfg.Files; i++ {
			if err := vfs.WriteFile(cli, fmt.Sprintf("/f%04d", i), payload, 0o644); err != nil {
				return err
			}
		}
		return nil
	}

	// Arm 1: cache disabled — every syscall is at least one RPC.
	{
		cli, srv, err := env.StartChirp("cache-off", cfg.Link)
		if err != nil {
			return nil, err
		}
		if err := seed(cli); err != nil {
			return nil, err
		}
		base := srv.Stats.Requests.Load()
		start := time.Now()
		var ops int64
		for r := 0; r < cfg.Rounds; r++ {
			n, err := cacheMix(cli, cfg.Files, cfg.FileSize)
			ops += n
			if err != nil {
				return nil, err
			}
		}
		wall := time.Since(start)
		rep.Profiles = append(rep.Profiles, profileOf("disabled", ops, srv.Stats.Requests.Load()-base, wall))
	}

	// Arms 2+3: the cached stack — one cold pass, then warm rounds.
	{
		cli, srv, err := env.StartChirp("cache-on", cfg.Link)
		if err != nil {
			return nil, err
		}
		if err := seed(cli); err != nil {
			return nil, err
		}
		reg := obs.NewRegistry()
		cfs := cache.New(cli, cache.Options{
			// Long enough that no horizon lapses mid-bench; lease TTL
			// (2s default) caps the effective horizon anyway.
			AttrTTL: 10 * time.Second,
			Metrics: reg,
		})
		defer cfs.Close()

		base := srv.Stats.Requests.Load()
		start := time.Now()
		coldOps, err := cacheMix(cfs, cfg.Files, cfg.FileSize)
		if err != nil {
			return nil, err
		}
		coldWall := time.Since(start)
		coldRPCs := srv.Stats.Requests.Load() - base
		rep.Profiles = append(rep.Profiles, profileOf("cold", coldOps, coldRPCs, coldWall))

		base = srv.Stats.Requests.Load()
		start = time.Now()
		var warmOps int64
		for r := 0; r < cfg.Rounds; r++ {
			n, err := cacheMix(cfs, cfg.Files, cfg.FileSize)
			warmOps += n
			if err != nil {
				return nil, err
			}
		}
		warmWall := time.Since(start)
		warm := profileOf("warm", warmOps, srv.Stats.Requests.Load()-base, warmWall)
		rep.Profiles = append(rep.Profiles, warm)
		rep.Cache = cfs.Stats()

		disabled := rep.Profiles[0]
		if warm.RPCs > 0 {
			rep.RPCReduction = float64(disabled.RPCs) / float64(warm.RPCs)
		} else {
			rep.RPCReduction = float64(disabled.RPCs)
		}
		if warm.MeanUS > 0 {
			rep.LatencyGain = disabled.MeanUS / warm.MeanUS
		}
	}
	return rep, nil
}

func profileOf(name string, ops, rpcs int64, wall time.Duration) CacheProfile {
	p := CacheProfile{
		Name:   name,
		Ops:    ops,
		RPCs:   rpcs,
		WallMS: float64(wall) / float64(time.Millisecond),
	}
	if ops > 0 {
		p.MeanUS = float64(wall) / float64(time.Microsecond) / float64(ops)
	}
	return p
}
