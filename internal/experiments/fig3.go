package experiments

import (
	"fmt"
	"strings"
	"time"

	"tss/internal/vfs"
)

// Figure 3 — System Call Latency: the overhead charged on individual
// system calls by the adapter's interposition mechanism. The paper
// traps calls with ptrace; here the adapter's trap emulator charges
// the context-switch pair and extra data copy per call (see
// DESIGN.md). The paper's observation to reproduce: most calls slow
// by roughly an order of magnitude, yet Figure 4 shows this cost is
// overwhelmed by network latency.

// Fig3Row is one measured call.
type Fig3Row struct {
	Call     string
	Direct   time.Duration // plain call against the local filesystem
	Adapter  time.Duration // same call through the interposing adapter
	Slowdown float64
}

// Fig3Result is the full figure.
type Fig3Result struct {
	Rows []Fig3Row
}

// RunFig3 measures call latency with and without interposition.
// iters controls the averaging window (use >= 1000 for stable means).
func RunFig3(iters int) (*Fig3Result, error) {
	env := NewEnv()
	defer env.Close()

	local, err := env.LocalFS()
	if err != nil {
		return nil, err
	}
	ad := env.AdapterOn(local, true)

	// Fixture files.
	payload := make([]byte, 8192)
	if err := vfs.WriteFile(local, "/f", payload, 0o644); err != nil {
		return nil, err
	}
	buf := make([]byte, 8192)

	type op struct {
		name    string
		direct  func() error
		adapted func() error
	}

	directFile, err := local.Open("/f", vfs.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	defer directFile.Close()
	adaptedFile, err := ad.Open("/m/f", vfs.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	defer adaptedFile.Close()

	ops := []op{
		{
			name:    "stat",
			direct:  func() error { _, err := local.Stat("/f"); return err },
			adapted: func() error { _, err := ad.Stat("/m/f"); return err },
		},
		{
			name: "open/close",
			direct: func() error {
				f, err := local.Open("/f", vfs.O_RDONLY, 0)
				if err != nil {
					return err
				}
				return f.Close()
			},
			adapted: func() error {
				f, err := ad.Open("/m/f", vfs.O_RDONLY, 0)
				if err != nil {
					return err
				}
				return f.Close()
			},
		},
		{
			name:    "read 8KB",
			direct:  func() error { _, err := directFile.Pread(buf, 0); return err },
			adapted: func() error { _, err := adaptedFile.Pread(buf, 0); return err },
		},
		{
			name:    "write 8KB",
			direct:  func() error { _, err := directFile.Pwrite(payload, 0); return err },
			adapted: func() error { _, err := adaptedFile.Pwrite(payload, 0); return err },
		},
	}

	res := &Fig3Result{}
	for _, o := range ops {
		d, err := timeOp(iters, o.direct)
		if err != nil {
			return nil, fmt.Errorf("fig3 %s direct: %w", o.name, err)
		}
		a, err := timeOp(iters, o.adapted)
		if err != nil {
			return nil, fmt.Errorf("fig3 %s adapted: %w", o.name, err)
		}
		row := Fig3Row{Call: o.name, Direct: d, Adapter: a}
		if d > 0 {
			row.Slowdown = float64(a) / float64(d)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the figure as a table.
func (r *Fig3Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 3: System Call Latency (direct vs through the adapter)\n")
	b.WriteString("paper shape: interposition slows most calls by roughly an order of magnitude\n")
	fmt.Fprintf(&b, "%-12s %12s %12s %10s\n", "CALL", "UNIX", "ADAPTER", "SLOWDOWN")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %12s %12s %9.1fx\n",
			row.Call, fmtDur(row.Direct), fmtDur(row.Adapter), row.Slowdown)
	}
	return b.String()
}
