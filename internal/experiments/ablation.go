package experiments

import (
	"fmt"
	"strings"
	"time"

	"tss/internal/cluster"
)

// Ablation: the buffer-cache size is what positions the Figure 7
// crossover. Sweeping it with everything else fixed shows the
// mechanism directly: with tiny caches the mixed workload is always
// disk-bound; with caches big enough to hold the per-server share it
// is always switch-bound; the paper's 512 MB nodes sit in between,
// which is why three servers is the magic number.

// CacheSweepRow is one cache size's result at a fixed server count.
type CacheSweepRow struct {
	CacheMB int64
	Result  cluster.Result
}

// CacheSweepResult is the full ablation.
type CacheSweepResult struct {
	Servers int
	Rows    []CacheSweepRow
}

// RunCacheSweep runs the Figure 7 workload on the given number of
// servers while sweeping the per-server cache size.
func RunCacheSweep(servers int, cacheMBs []int64) *CacheSweepResult {
	if len(cacheMBs) == 0 {
		cacheMBs = []int64{64, 128, 256, 480, 1024, 2048}
	}
	res := &CacheSweepResult{Servers: servers}
	for _, mb := range cacheMBs {
		cfg := cluster.Config{
			Servers:    servers,
			Clients:    24,
			FileCount:  1280,
			FileSize:   1 * cluster.MB,
			CacheBytes: mb * cluster.MB,
			Warmup:     20 * time.Second,
			Measure:    60 * time.Second,
			Prewarm:    true,
			Seed:       7,
		}
		res.Rows = append(res.Rows, CacheSweepRow{CacheMB: mb, Result: cluster.Run(cfg)})
	}
	return res
}

// Render prints the ablation table.
func (r *CacheSweepResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: buffer cache size vs throughput (Figure 7 workload, %d servers)\n", r.Servers)
	b.WriteString("mechanism: cache >= dataset/servers flips the system from disk-bound to switch-bound\n")
	fmt.Fprintf(&b, "%-10s %14s %10s\n", "CACHE", "THROUGHPUT", "HITRATE")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%7d MB %9.1f MB/s %10.2f\n", row.CacheMB, row.Result.ThroughputMBps, row.Result.HitRate)
	}
	return b.String()
}
