package experiments

import (
	"strings"
	"testing"
	"time"

	"tss/internal/netsim"
	"tss/internal/workload"
)

// These tests run each experiment driver at reduced scale and assert
// the paper's qualitative shapes, so a regression that flips a
// conclusion fails CI even though absolute numbers drift by machine.

func TestFig3Shape(t *testing.T) {
	res, err := RunFig3(300)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	big := 0
	for _, row := range res.Rows {
		if row.Adapter <= row.Direct {
			t.Errorf("%s: adapter (%v) not slower than direct (%v)", row.Call, row.Adapter, row.Direct)
		}
		if row.Slowdown < 1.2 {
			t.Errorf("%s: slowdown %.2f, want interposition clearly visible", row.Call, row.Slowdown)
		}
		if row.Slowdown >= 2 {
			big++
		}
	}
	// "Most system calls are slowed by an order of magnitude" in the
	// paper; our thread-switch emulation is cheaper than ptrace's
	// process switches, but the multiple must still dominate at least
	// half the calls.
	if big < 2 {
		t.Errorf("only %d/4 calls slowed >=2x through the adapter", big)
	}
	if !strings.Contains(res.Render(), "SLOWDOWN") {
		t.Error("render missing header")
	}
}

func TestFig4Shape(t *testing.T) {
	res, err := RunFig4(120)
	if err != nil {
		t.Fatal(err)
	}
	byCall := map[string]Fig4Row{}
	for _, row := range res.Rows {
		byCall[row.Call] = row
	}
	// CFS metadata beats NFS (whole-path vs per-component).
	if s := byCall["stat"]; s.CFS >= s.NFS {
		t.Errorf("stat: CFS %v not faster than NFS %v", s.CFS, s.NFS)
	}
	if o := byCall["open/close"]; o.CFS >= o.NFS {
		t.Errorf("open/close: CFS %v not faster than NFS %v", o.CFS, o.NFS)
	}
	// 8KB writes: one round trip vs two 4KB RPCs.
	if w := byCall["write 8KB"]; w.CFS >= w.NFS {
		t.Errorf("write 8KB: CFS %v not faster than NFS %v", w.CFS, w.NFS)
	}
	// DSFS data ops within ~1.5x of CFS; metadata roughly double.
	if r := byCall["read 8KB"]; float64(r.DSFS) > 1.6*float64(r.CFS) {
		t.Errorf("read 8KB: DSFS %v should match CFS %v", r.DSFS, r.CFS)
	}
	if s := byCall["stat"]; float64(s.DSFS) < 1.4*float64(s.CFS) || float64(s.DSFS) > 3.2*float64(s.CFS) {
		t.Errorf("stat: DSFS %v vs CFS %v, want ~2x", s.DSFS, s.CFS)
	}
}

func TestFig5Shape(t *testing.T) {
	res, err := RunFig5([]int{4 << 10, 256 << 10, 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	last := res.Rows[len(res.Rows)-1] // largest block size
	if !(last.UnixMBps > last.ParrotMBps) {
		t.Errorf("Unix (%.0f) should beat Parrot (%.0f)", last.UnixMBps, last.ParrotMBps)
	}
	if !(last.ParrotMBps > last.CFSMBps) {
		t.Errorf("Parrot local (%.0f) should beat CFS over net (%.0f)", last.ParrotMBps, last.CFSMBps)
	}
	if !(last.CFSMBps > last.NFSMBps*2) {
		t.Errorf("CFS (%.0f) should far exceed NFS (%.0f)", last.CFSMBps, last.NFSMBps)
	}
	// NFS is flat in block size: its 4KB RPC ceiling ignores the
	// application block size.
	first := res.Rows[0]
	if ratio := last.NFSMBps / first.NFSMBps; ratio > 3 {
		t.Errorf("NFS bandwidth grew %.1fx with block size; should be ~flat", ratio)
	}
	// CFS rises with block size.
	if !(last.CFSMBps > first.CFSMBps*2) {
		t.Errorf("CFS bandwidth should rise with block size: %.0f -> %.0f", first.CFSMBps, last.CFSMBps)
	}
}

func TestScaleFiguresShape(t *testing.T) {
	for _, fig := range []string{"fig6", "fig7", "fig8"} {
		res, err := RunScale(fig)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 8 {
			t.Fatalf("%s rows = %d", fig, len(res.Rows))
		}
		one := res.Rows[0].ThroughputMBps
		eight := res.Rows[7].ThroughputMBps
		switch fig {
		case "fig6":
			if one < 80 || one > 115 {
				t.Errorf("fig6 1 server = %.1f, want ~100", one)
			}
			if eight < 250 || eight > 320 {
				t.Errorf("fig6 8 servers = %.1f, want ~300", eight)
			}
		case "fig7":
			three := res.Rows[2].ThroughputMBps
			if one > three/2 {
				t.Errorf("fig7: 1 server (%.1f) should be far below 3 servers (%.1f)", one, three)
			}
			if three < 200 {
				t.Errorf("fig7: 3 servers = %.1f, want near backplane", three)
			}
		case "fig8":
			if one < 5 || one > 18 {
				t.Errorf("fig8 1 server = %.1f, want ~disk speed", one)
			}
			if eight < one*4 {
				t.Errorf("fig8: no linear scaling (%.1f -> %.1f)", one, eight)
			}
		}
		if res.Render() == "" {
			t.Error("empty render")
		}
	}
}

func TestSP5TableShape(t *testing.T) {
	cfg := workload.SP5Config{
		Libraries:    40,
		LibSize:      8 << 10,
		SearchMisses: 3,
		ConfigFiles:  20,
		Events:       8,
		EventRead:    8 << 10,
		EventWrite:   4 << 10,
		EventCompute: 5 * time.Millisecond,
	}
	// Scale the WAN latency down so the test finishes quickly; the
	// ordering WAN > LAN > local is latency-scale invariant.
	links := SP5Links{
		LAN: netsim.LinkProfile{Latency: 100 * time.Microsecond, Bandwidth: 12_500_000},
		WAN: netsim.LinkProfile{Latency: 4 * time.Millisecond, Bandwidth: 12_500_000},
	}
	res, err := RunSP5Table(cfg, links)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byName := map[string]workload.SP5Result{}
	for _, r := range res.Rows {
		byName[r.Config] = r.Result
	}
	unix, lanNFS, lanTSS, wanTSS := byName["Unix"], byName["LAN / NFS"], byName["LAN / TSS"], byName["WAN / TSS"]

	// Init blows up by a large factor on any remote configuration.
	for name, r := range map[string]workload.SP5Result{"LAN / NFS": lanNFS, "LAN / TSS": lanTSS, "WAN / TSS": wanTSS} {
		if r.InitTime < 4*unix.InitTime {
			t.Errorf("%s init %v vs Unix %v: want order-of-magnitude blowup", name, r.InitTime, unix.InitTime)
		}
	}
	// LAN/TSS comparable to LAN/NFS (within 2.5x either way).
	ratio := float64(lanTSS.InitTime) / float64(lanNFS.InitTime)
	if ratio > 2.5 || ratio < 0.4 {
		t.Errorf("LAN TSS/NFS init ratio = %.2f, want comparable", ratio)
	}
	// Events stay within a small factor of local (compute dominated).
	for name, r := range map[string]workload.SP5Result{"LAN / NFS": lanNFS, "LAN / TSS": lanTSS} {
		if r.TimePerEvent > 3*unix.TimePerEvent {
			t.Errorf("%s time/event %v vs Unix %v: want within ~2-3x", name, r.TimePerEvent, unix.TimePerEvent)
		}
	}
	// WAN init worse than LAN init.
	if wanTSS.InitTime < lanTSS.InitTime {
		t.Errorf("WAN init %v should exceed LAN init %v", wanTSS.InitTime, lanTSS.InitTime)
	}
}

func TestFig9Shape(t *testing.T) {
	cfg := DefaultFig9()
	cfg.RecordSize = 64 << 10 // shrink for test speed; same dynamics
	cfg.Budget = int64(cfg.Records) * int64(cfg.RecordSize) * 3
	res, err := RunFig9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllReadable {
		t.Error("data lost despite repairs")
	}
	// The timeline must reach the budget, dip at each failure, and
	// re-reach the budget after each repair.
	budgetMB := float64(cfg.Budget) / (1 << 20)
	var reached, dips, repairs int
	for _, p := range res.Points {
		switch {
		case strings.Contains(p.Event, "budget reached"), strings.Contains(p.Event, "repaired"):
			if p.StoredMB < budgetMB*0.99 {
				t.Errorf("at %q stored %.2f MB < budget %.2f", p.Event, p.StoredMB, budgetMB)
			}
			if strings.Contains(p.Event, "repaired") {
				repairs++
			} else {
				reached++
			}
		case strings.Contains(p.Event, "failure"):
			if p.StoredMB >= budgetMB {
				t.Errorf("failure %q did not reduce stored bytes", p.Event)
			}
			dips++
		}
	}
	if reached != 1 || dips != 3 || repairs != 3 {
		t.Errorf("timeline: reached=%d dips=%d repairs=%d, want 1/3/3", reached, dips, repairs)
	}
}

// The cache sweep must show the disk-bound -> switch-bound flip as the
// cache crosses dataset/servers (1280 MB / 3 ≈ 427 MB).
func TestCacheSweepAblation(t *testing.T) {
	res := RunCacheSweep(3, []int64{64, 480, 2048})
	small, mid, big := res.Rows[0].Result, res.Rows[1].Result, res.Rows[2].Result
	if small.ThroughputMBps > 100 {
		t.Errorf("64MB cache = %.1f MB/s, want disk-bound", small.ThroughputMBps)
	}
	if mid.ThroughputMBps < 200 || big.ThroughputMBps < 200 {
		t.Errorf("big caches = %.1f / %.1f MB/s, want switch-bound", mid.ThroughputMBps, big.ThroughputMBps)
	}
	if small.HitRate > 0.5 || mid.HitRate < 0.9 {
		t.Errorf("hit rates = %.2f / %.2f", small.HitRate, mid.HitRate)
	}
	if res.Render() == "" {
		t.Error("empty render")
	}
}
