package experiments

import (
	"fmt"
	"strings"
	"time"

	"tss/internal/cluster"
)

// Figures 6-8 — DSFS scalability on the modeled cluster (each node:
// ~10 MB/s disk, 512 MB RAM, gigabit port; 300 MB/s switch backplane).
//
//   - Figure 6 (net-bound): 128 x 1 MB files — everything cached; one
//     server saturates its port at ~100 MB/s, three or more saturate
//     the backplane at ~300 MB/s.
//   - Figure 7 (mixed): 1280 x 1 MB — below three servers the
//     dataset misses cache and runs at disk speeds; at three or more
//     it fits in aggregate memory and hits the backplane.
//   - Figure 8 (disk-bound): 1280 x 10 MB — never fits; throughput is
//     ~disk speed per server and scales roughly linearly.

// ScaleResult is one figure's sweep over server counts.
type ScaleResult struct {
	Figure  string
	Caption string
	Rows    []cluster.Result
}

// scaleConfig returns the workload for one of the three figures.
func scaleConfig(figure string) (cluster.Config, string, error) {
	base := cluster.Config{
		Clients: 24,
		Warmup:  20 * time.Second,
		Measure: 60 * time.Second,
		Prewarm: true,
		Seed:    7,
	}
	switch figure {
	case "fig6":
		base.FileCount, base.FileSize = 128, 1*cluster.MB
		return base, "Net-Bound: 128 MB served from 1-8 servers", nil
	case "fig7":
		base.FileCount, base.FileSize = 1280, 1*cluster.MB
		return base, "Mixed-Bound: 1280 MB served from 1-8 servers", nil
	case "fig8":
		base.FileCount, base.FileSize = 1280, 10*cluster.MB
		base.Clients = 48
		return base, "Disk-Bound: 12800 MB served from 1-8 servers", nil
	}
	return base, "", fmt.Errorf("unknown scalability figure %q", figure)
}

// RunScale executes the sweep for "fig6", "fig7", or "fig8".
func RunScale(figure string) (*ScaleResult, error) {
	cfg, caption, err := scaleConfig(figure)
	if err != nil {
		return nil, err
	}
	rows := cluster.Sweep(cfg, []int{1, 2, 3, 4, 5, 6, 7, 8})
	return &ScaleResult{Figure: figure, Caption: caption, Rows: rows}, nil
}

// Render prints the figure as a table.
func (r *ScaleResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — DSFS Scalability, %s\n", strings.ToUpper(r.Figure[:1])+r.Figure[1:], r.Caption)
	switch r.Figure {
	case "fig6":
		b.WriteString("paper shape: ~100 MB/s at 1 server (port), plateau ~300 MB/s at >=3 (backplane)\n")
	case "fig7":
		b.WriteString("paper shape: disk-bound below 3 servers, backplane-bound at >=3\n")
	case "fig8":
		b.WriteString("paper shape: ~disk speed per server, roughly linear scaling\n")
	}
	fmt.Fprintf(&b, "%-8s %14s %10s %8s\n", "SERVERS", "THROUGHPUT", "HITRATE", "READS")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8d %9.1f MB/s %10.2f %8d\n",
			row.Servers, row.ThroughputMBps, row.HitRate, row.Reads)
	}
	return b.String()
}
