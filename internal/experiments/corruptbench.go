package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"tss/internal/abstraction"
	"tss/internal/faultfs"
	"tss/internal/vfs"
)

// CorruptBenchConfig sizes the integrity experiment: a three-replica
// mirror with silent bit-flip corruption armed on one replica, read
// with and without verify-on-read, then scrubbed back to health.
type CorruptBenchConfig struct {
	// Files is the number of files seeded through the mirror.
	Files int
	// FileSize is the size of each file in bytes.
	FileSize int
	// FlipProb is the per-byte bit-flip probability on the bad replica.
	FlipProb float64
	// Seed makes the corruption pattern reproducible.
	Seed int64
	// Quick marks the reduced configuration in the report.
	Quick bool
}

// DefaultCorruptBench returns the full-size configuration; quick
// shrinks the workload for a fast pass.
func DefaultCorruptBench(quick bool) CorruptBenchConfig {
	cfg := CorruptBenchConfig{
		Files:    32,
		FileSize: 64 << 10,
		FlipProb: 1e-3,
		Seed:     42,
	}
	if quick {
		cfg.Files, cfg.FileSize = 12, 16<<10
		cfg.Quick = true
	}
	return cfg
}

// CorruptBenchReport records what corruption did and what the
// integrity machinery caught.
type CorruptBenchReport struct {
	Name     string  `json:"name"`
	Quick    bool    `json:"quick"`
	Files    int     `json:"files"`
	FileSize int     `json:"file_size"`
	FlipProb float64 `json:"flip_prob"`
	// Flips is the number of bits the fault layer actually flipped
	// across all read passes.
	Flips int64 `json:"flips"`
	// UnverifiedWrong counts reads that returned corrupted payloads
	// with verification off — the damage a plain mirror passes through.
	UnverifiedWrong int `json:"unverified_wrong_reads"`
	// VerifiedWrong counts corrupted payloads delivered with
	// verify-on-read enabled. The contract is zero.
	VerifiedWrong int `json:"verified_wrong_reads"`
	// IntegrityFailovers counts reads re-served from a sibling after a
	// digest mismatch.
	IntegrityFailovers int64 `json:"integrity_failovers"`
	// ScrubDivergent and ScrubRepaired describe the repairing scrub.
	ScrubDivergent int     `json:"scrub_divergent"`
	ScrubRepaired  int     `json:"scrub_repaired"`
	ScrubMS        float64 `json:"scrub_ms"`
	// SecondScrubDivergent is the divergence a follow-up scrub still
	// sees; a successful repair leaves zero.
	SecondScrubDivergent int `json:"second_scrub_divergent"`
}

// JSON renders the report for BENCH_chirp.json.
func (r *CorruptBenchReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Render renders the report as a table.
func (r *CorruptBenchReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Corruption bench: %d files × %d B, flip p=%g on 1 of 3 replicas (%d bits flipped)\n",
		r.Files, r.FileSize, r.FlipProb, r.Flips)
	fmt.Fprintf(&b, "%-28s %8s\n", "PHASE", "RESULT")
	fmt.Fprintf(&b, "%-28s %8d\n", "wrong reads, verify off", r.UnverifiedWrong)
	fmt.Fprintf(&b, "%-28s %8d\n", "wrong reads, verify on", r.VerifiedWrong)
	fmt.Fprintf(&b, "%-28s %8d\n", "integrity failovers", r.IntegrityFailovers)
	fmt.Fprintf(&b, "%-28s %8d (%d copies, %.1fms)\n", "scrub divergent", r.ScrubDivergent, r.ScrubRepaired, r.ScrubMS)
	fmt.Fprintf(&b, "%-28s %8d\n", "second scrub divergent", r.SecondScrubDivergent)
	return b.String()
}

// RunCorruptBench measures the end-to-end integrity story: seed a
// three-replica mirror, arm deterministic bit flips on replica 0, and
// show that (1) an unverified mirror serves corrupted bytes, (2)
// verify-on-read serves zero corrupted bytes by failing over on digest
// mismatch, and (3) one repairing scrub restores replica agreement so
// a second scrub finds nothing.
func RunCorruptBench(cfg CorruptBenchConfig) (*CorruptBenchReport, error) {
	env := NewEnv()
	defer env.Close()

	var bad *faultfs.FS
	replicas := make([]vfs.FileSystem, 3)
	for i := range replicas {
		lfs, err := env.LocalFS()
		if err != nil {
			return nil, err
		}
		if i == 0 {
			// The healthiest replica (lowest index) is the one every
			// read tries first — corruption there exercises the
			// verification path on each read, not just occasionally.
			bad = faultfs.New(lfs)
			replicas[i] = bad
		} else {
			replicas[i] = lfs
		}
	}

	plain, err := abstraction.NewMirror(replicas...)
	if err != nil {
		return nil, err
	}
	verified, err := abstraction.NewMirrorOptions(
		abstraction.MirrorOptions{VerifyReads: true}, replicas...)
	if err != nil {
		return nil, err
	}

	payloads := make([][]byte, cfg.Files)
	for i := range payloads {
		payloads[i] = bytes.Repeat([]byte(fmt.Sprintf("payload-%04d ", i)), cfg.FileSize/13+1)[:cfg.FileSize]
		p := fmt.Sprintf("/f%04d", i)
		//lint:ignore copyapi benchmark seeding measures the raw single-stream baseline
		if err := vfs.PutReader(plain, p, 0o644, int64(cfg.FileSize), bytes.NewReader(payloads[i])); err != nil {
			return nil, fmt.Errorf("seed %s: %w", p, err)
		}
	}

	bad.CorruptRandomly(cfg.FlipProb, cfg.Seed)

	rep := &CorruptBenchReport{
		Name:     "mirror-integrity",
		Quick:    cfg.Quick,
		Files:    cfg.Files,
		FileSize: cfg.FileSize,
		FlipProb: cfg.FlipProb,
	}

	readAll := func(m *abstraction.MirrorFS) (wrong int, err error) {
		for i := range payloads {
			var buf bytes.Buffer
			p := fmt.Sprintf("/f%04d", i)
			if _, err := m.GetFile(p, &buf); err != nil {
				return wrong, fmt.Errorf("read %s: %w", p, err)
			}
			if !bytes.Equal(buf.Bytes(), payloads[i]) {
				wrong++
			}
		}
		return wrong, nil
	}

	if rep.UnverifiedWrong, err = readAll(plain); err != nil {
		return nil, fmt.Errorf("verify-off pass: %w", err)
	}
	if rep.VerifiedWrong, err = readAll(verified); err != nil {
		return nil, fmt.Errorf("verify-on pass: %w", err)
	}
	rep.IntegrityFailovers = verified.Stats.IntegrityFailovers.Load()

	start := time.Now()
	scrub, err := verified.Scrub(context.Background(), abstraction.ScrubOptions{Repair: true})
	if err != nil {
		return nil, fmt.Errorf("scrub: %w", err)
	}
	rep.ScrubMS = float64(time.Since(start).Nanoseconds()) / 1e6
	rep.ScrubDivergent = scrub.Divergent
	rep.ScrubRepaired = scrub.Repaired

	again, err := verified.Scrub(context.Background(), abstraction.ScrubOptions{})
	if err != nil {
		return nil, fmt.Errorf("second scrub: %w", err)
	}
	rep.SecondScrubDivergent = again.Divergent
	rep.Flips = bad.Flips()
	return rep, nil
}
