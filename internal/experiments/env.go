// Package experiments contains one driver per table and figure of the
// paper's evaluation (§7-§9). Each driver assembles the systems under
// test — real Chirp servers, the NFS baseline, adapters, abstractions,
// or the cluster model — runs the paper's workload, and reports rows
// in the same form the paper plots.
//
// The drivers are used both by the root-level Go benchmarks
// (bench_test.go) and by the cmd/tssbench tool, and their output is
// recorded against the paper's numbers in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"net"
	"os"
	"time"

	"tss/internal/adapter"
	"tss/internal/auth"
	"tss/internal/chirp"
	"tss/internal/netsim"
	"tss/internal/nfsbase"
	"tss/internal/vfs"
)

// Env owns the machinery of one experiment: a simulated network plus
// any servers and temporary directories created on it.
type Env struct {
	Net      *netsim.Network
	cleanups []func()
}

// NewEnv creates an empty environment.
func NewEnv() *Env {
	return &Env{Net: netsim.NewNetwork()}
}

// Close releases every resource the environment created.
func (e *Env) Close() {
	for i := len(e.cleanups) - 1; i >= 0; i-- {
		e.cleanups[i]()
	}
	e.cleanups = nil
}

func (e *Env) onClose(f func()) { e.cleanups = append(e.cleanups, f) }

// TempDir creates a directory removed at Close.
func (e *Env) TempDir() (string, error) {
	dir, err := os.MkdirTemp("", "tss-exp-")
	if err != nil {
		return "", err
	}
	e.onClose(func() { os.RemoveAll(dir) })
	return dir, nil
}

// LocalFS creates a fresh confined local filesystem on a temp dir.
func (e *Env) LocalFS() (*vfs.LocalFS, error) {
	dir, err := e.TempDir()
	if err != nil {
		return nil, err
	}
	return vfs.NewLocalFS(dir)
}

// StartChirp deploys a Chirp file server on the simulated network
// under the given name and returns an authenticated client connected
// through a link with the given profile.
func (e *Env) StartChirp(name string, prof netsim.LinkProfile) (*chirp.Client, *chirp.Server, error) {
	dir, err := e.TempDir()
	if err != nil {
		return nil, nil, err
	}
	srv, err := chirp.NewServer(dir, chirp.ServerConfig{
		Name:      name,
		Owner:     "hostname:bench-client",
		Verifiers: []auth.Verifier{&auth.HostnameVerifier{}},
	})
	if err != nil {
		return nil, nil, err
	}
	l, err := e.Net.Listen(name)
	if err != nil {
		return nil, nil, err
	}
	go srv.Serve(l)
	e.onClose(func() { l.Close() })
	cli, err := chirp.Dial(chirp.ClientConfig{
		Dial: func() (net.Conn, error) {
			return e.Net.DialFrom("bench-client", name, prof)
		},
		Credentials: []auth.Credential{auth.HostnameCredential{}},
		Timeout:     30 * time.Second,
	})
	if err != nil {
		return nil, nil, err
	}
	e.onClose(func() { cli.Close() })
	return cli, srv, nil
}

// DialChirpPool connects a pooled transport of up to size connections
// to a server previously deployed with StartChirp, through links with
// the given profile (each pooled connection gets its own shaped link,
// as separate TCP streams would).
func (e *Env) DialChirpPool(name string, prof netsim.LinkProfile, size int) (*chirp.Pool, error) {
	p, err := chirp.NewPool(chirp.ClientConfig{
		Dial: func() (net.Conn, error) {
			return e.Net.DialFrom("bench-client", name, prof)
		},
		Credentials: []auth.Credential{auth.HostnameCredential{}},
		Timeout:     30 * time.Second,
		PoolSize:    size,
	})
	if err != nil {
		return nil, err
	}
	e.onClose(func() { p.Close() })
	return p, nil
}

// StartNFS deploys the NFS baseline server and returns a client
// connected through the given link profile.
func (e *Env) StartNFS(name string, prof netsim.LinkProfile) (*nfsbase.Client, error) {
	dir, err := e.TempDir()
	if err != nil {
		return nil, err
	}
	srv, err := nfsbase.NewServer(dir)
	if err != nil {
		return nil, err
	}
	l, err := e.Net.Listen(name)
	if err != nil {
		return nil, err
	}
	go srv.Serve(l)
	e.onClose(func() { l.Close() })
	cli, err := nfsbase.Dial(nfsbase.ClientConfig{
		Dial:    func() (net.Conn, error) { return e.Net.Dial(name, prof) },
		Timeout: 30 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	e.onClose(func() { cli.Close() })
	return cli, nil
}

// AdapterOn wraps fs in an adapter mounted at /m, optionally charging
// trap-emulation overhead, and returns the adapter.
func (e *Env) AdapterOn(fs vfs.FileSystem, emulateTrap bool) *adapter.Adapter {
	cfg := adapter.Config{}
	if emulateTrap {
		tr := adapter.NewTrapEmulator()
		e.onClose(tr.Close)
		cfg.Trap = tr
	}
	a := adapter.New(cfg)
	a.MountFS("/m", fs)
	return a
}

// timeOp runs op iters times and returns the mean latency.
func timeOp(iters int, op func() error) (time.Duration, error) {
	// Warm up.
	for i := 0; i < 3; i++ {
		if err := op(); err != nil {
			return 0, err
		}
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := op(); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(iters), nil
}

// mbps converts bytes moved in elapsed to MB/s.
func mbps(bytes int64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(bytes) / elapsed.Seconds() / (1 << 20)
}

// fmtDur renders a latency with enough resolution for microsecond ops.
func fmtDur(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}
