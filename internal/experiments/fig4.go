package experiments

import (
	"fmt"
	"strings"
	"time"

	"tss/internal/abstraction"
	"tss/internal/netsim"
	"tss/internal/vfs"
)

// Figure 4 — I/O Call Latency over a gigabit network: Parrot+CFS
// versus kernel NFS (caching off) versus Parrot+DSFS. The shapes to
// reproduce:
//
//   - CFS stat and open beat NFS because Chirp sends whole paths in
//     one round trip while NFS resolves component by component;
//   - CFS writes an 8 KB buffer in one round trip; NFS needs two 4 KB
//     RPCs;
//   - DSFS matches CFS for data operations but pays double for
//     metadata (stub + data).

// Fig4Row is one measured call across the three systems.
type Fig4Row struct {
	Call string
	CFS  time.Duration
	NFS  time.Duration
	DSFS time.Duration
}

// Fig4Result is the full figure.
type Fig4Result struct {
	Rows []Fig4Row
}

// RunFig4 measures I/O call latency over a simulated gigabit link.
func RunFig4(iters int) (*Fig4Result, error) {
	env := NewEnv()
	defer env.Close()
	prof := netsim.GigE

	// CFS: one Chirp server through the adapter.
	cfsClient, _, err := env.StartChirp("cfs.sim", prof)
	if err != nil {
		return nil, err
	}
	cfs := env.AdapterOn(cfsClient, true)

	// NFS baseline, accessed "via the usual kernel method" — directly.
	nfs, err := env.StartNFS("nfs.sim", prof)
	if err != nil {
		return nil, err
	}

	// DSFS: metadata on one Chirp server, data on two more.
	metaClient, _, err := env.StartChirp("meta.sim", prof)
	if err != nil {
		return nil, err
	}
	data1, _, err := env.StartChirp("data1.sim", prof)
	if err != nil {
		return nil, err
	}
	data2, _, err := env.StartChirp("data2.sim", prof)
	if err != nil {
		return nil, err
	}
	dsfsRaw, err := abstraction.NewDSFS(metaClient, "/tree", []abstraction.DataServer{
		{Name: "data1.sim", FS: data1, Dir: "/vol"},
		{Name: "data2.sim", FS: data2, Dir: "/vol"},
	}, abstraction.Options{ClientID: "bench"})
	if err != nil {
		return nil, err
	}
	// "a DSFS via Parrot": the DSFS is also reached through the
	// adapter, like the CFS.
	dsfsAdapter := env.AdapterOn(dsfsRaw, true)
	dsfs, err := vfs.Subtree(dsfsAdapter, "/m")
	if err != nil {
		return nil, err
	}

	// Fixtures: the same three-deep path on every system, as the NFS
	// lookup cost depends on depth.
	payload := make([]byte, 8192)
	buf := make([]byte, 8192)
	const dir1, dir2, file = "/bench", "/bench/run", "/bench/run/f"
	for _, fs := range []vfs.FileSystem{cfsClient, nfs, dsfs} {
		if err := vfs.MkdirAll(fs, dir2, 0o755); err != nil {
			return nil, err
		}
		if err := vfs.WriteFile(fs, file, payload, 0o644); err != nil {
			return nil, err
		}
	}

	cfsFile, err := cfs.Open("/m"+file, vfs.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	defer cfsFile.Close()
	nfsFile, err := nfs.Open(file, vfs.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	defer nfsFile.Close()
	dsfsFile, err := dsfs.Open(file, vfs.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	defer dsfsFile.Close()

	type op struct {
		name string
		cfs  func() error
		nfs  func() error
		dsfs func() error
	}
	openClose := func(fs vfs.FileSystem, path string) func() error {
		return func() error {
			f, err := fs.Open(path, vfs.O_RDONLY, 0)
			if err != nil {
				return err
			}
			return f.Close()
		}
	}
	ops := []op{
		{
			name: "stat",
			cfs:  func() error { _, err := cfs.Stat("/m" + file); return err },
			nfs:  func() error { _, err := nfs.Stat(file); return err },
			dsfs: func() error { _, err := dsfs.Stat(file); return err },
		},
		{
			name: "open/close",
			cfs:  openClose(cfs, "/m"+file),
			nfs:  openClose(nfs, file),
			dsfs: openClose(dsfs, file),
		},
		{
			name: "read 8KB",
			cfs:  func() error { _, err := cfsFile.Pread(buf, 0); return err },
			nfs:  func() error { _, err := nfsFile.Pread(buf, 0); return err },
			dsfs: func() error { _, err := dsfsFile.Pread(buf, 0); return err },
		},
		{
			name: "write 8KB",
			cfs:  func() error { _, err := cfsFile.Pwrite(payload, 0); return err },
			nfs:  func() error { _, err := nfsFile.Pwrite(payload, 0); return err },
			dsfs: func() error { _, err := dsfsFile.Pwrite(payload, 0); return err },
		},
	}

	res := &Fig4Result{}
	for _, o := range ops {
		c, err := timeOp(iters, o.cfs)
		if err != nil {
			return nil, fmt.Errorf("fig4 %s cfs: %w", o.name, err)
		}
		n, err := timeOp(iters, o.nfs)
		if err != nil {
			return nil, fmt.Errorf("fig4 %s nfs: %w", o.name, err)
		}
		d, err := timeOp(iters, o.dsfs)
		if err != nil {
			return nil, fmt.Errorf("fig4 %s dsfs: %w", o.name, err)
		}
		res.Rows = append(res.Rows, Fig4Row{Call: o.name, CFS: c, NFS: n, DSFS: d})
	}
	return res, nil
}

// Render prints the figure as a table.
func (r *Fig4Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 4: I/O Call Latency over gigabit Ethernet (no caching anywhere)\n")
	b.WriteString("paper shape: CFS <= NFS on metadata (whole-path vs per-component lookup);\n")
	b.WriteString("             DSFS ~= CFS on data, ~2x CFS on metadata (stub + data)\n")
	fmt.Fprintf(&b, "%-12s %14s %14s %14s\n", "CALL", "PARROT+CFS", "UNIX+NFS", "PARROT+DSFS")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %14s %14s %14s\n",
			row.Call, fmtDur(row.CFS), fmtDur(row.NFS), fmtDur(row.DSFS))
	}
	return b.String()
}
