package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"tss/internal/netsim"
	"tss/internal/vfs"
)

// MultipartBenchConfig sizes the multipart transfer benchmark: one
// large file pushed through vfs.Copy at increasing stream counts, each
// stream riding its own pooled connection with its own shaped link.
type MultipartBenchConfig struct {
	// FileSize is the transfer size in bytes. The experiment is only
	// meaningful at bulk scale, so quick mode does not shrink it.
	FileSize int64
	// ChunkSize is the multipart chunk size handed to vfs.Copy.
	ChunkSize int64
	// Streams lists the concurrency levels to measure; the first entry
	// should be 1 so later rows have a single-stream baseline.
	Streams []int
	// Link shapes each pooled client↔server connection.
	Link netsim.LinkProfile
	// Quick marks the reduced configuration in the report.
	Quick bool
}

// DefaultMultipartBench returns the standard configuration. The file
// stays at 256 MB even under quick: a multipart engine measured on a
// small file reports only its own overhead.
func DefaultMultipartBench(quick bool) MultipartBenchConfig {
	return MultipartBenchConfig{
		FileSize:  256 << 20,
		ChunkSize: 8 << 20,
		Streams:   []int{1, 2, 4, 8},
		Link:      PoolLink,
		Quick:     quick,
	}
}

// MultipartBenchRow is one concurrency level's result.
type MultipartBenchRow struct {
	Streams   int     `json:"streams"`
	Conns     int     `json:"conns"` // live pooled connections
	Bytes     int64   `json:"bytes"`
	ElapsedMS float64 `json:"elapsed_ms"`
	MBps      float64 `json:"mbps"`
	// Speedup is this row's throughput over the single-stream row.
	Speedup float64 `json:"speedup"`
}

// MultipartBenchReport compares single-stream against N-way multipart
// transfers of the same file over the same shaped network.
type MultipartBenchReport struct {
	Name      string              `json:"name"`
	Quick     bool                `json:"quick"`
	FileSize  int64               `json:"file_size"`
	ChunkSize int64               `json:"chunk_size"`
	Rows      []MultipartBenchRow `json:"rows"`
	// Speedup4x is the 4-way row's throughput over single-stream, the
	// headline the acceptance gate checks.
	Speedup4x float64 `json:"speedup_4x"`
}

// JSON renders the report for BENCH_chirp.json.
func (r *MultipartBenchReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Render renders the comparison as a table.
func (r *MultipartBenchReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Multipart bench: %d MB file, %d MB chunks, crc32c verified\n",
		r.FileSize>>20, r.ChunkSize>>20)
	fmt.Fprintf(&b, "%8s %6s %12s %10s %8s\n", "STREAMS", "CONNS", "ELAPSED", "MB/s", "SPEEDUP")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8d %6d %10.1fms %10.1f %7.2fx\n",
			row.Streams, row.Conns, row.ElapsedMS, row.MBps, row.Speedup)
	}
	fmt.Fprintf(&b, "4-way speedup: %.2fx\n", r.Speedup4x)
	return b.String()
}

// RunMultipartBench measures what the multipart engine buys on a bulk
// transfer: the same 256 MB file is pushed through vfs.Copy at each
// configured stream count against a pool sized to match, so every
// stream gets its own connection and its own bandwidth-shaped link —
// the multi-path deployment the paper's tactical networks assume. The
// single-stream row is the pre-multipart baseline; every row verifies
// the composed crc32c, so the speedups are for integrity-checked
// transfers, not raw byte movement.
func RunMultipartBench(cfg MultipartBenchConfig) (*MultipartBenchReport, error) {
	env := NewEnv()
	defer env.Close()

	local, err := env.LocalFS()
	if err != nil {
		return nil, err
	}
	payload := bytes.Repeat([]byte("tactical-storage "), int(cfg.FileSize)/17+1)[:cfg.FileSize]
	if err := vfs.WriteFile(local, "/src.bin", payload, 0o644); err != nil {
		return nil, fmt.Errorf("seed source: %w", err)
	}
	src := vfs.Loc{FS: local, Path: "/src.bin"}

	if _, _, err := env.StartChirp("multipart-bench", cfg.Link); err != nil {
		return nil, err
	}

	rep := &MultipartBenchReport{
		Name:      "chirp-multipart",
		Quick:     cfg.Quick,
		FileSize:  cfg.FileSize,
		ChunkSize: cfg.ChunkSize,
	}
	var baseline float64
	for _, n := range cfg.Streams {
		pool, err := env.DialChirpPool("multipart-bench", cfg.Link, n)
		if err != nil {
			return nil, err
		}
		dst := vfs.Loc{FS: pool, Path: fmt.Sprintf("/dst-%d.bin", n)}
		start := time.Now()
		nb, err := vfs.Copy(context.Background(), dst, src, vfs.CopyOptions{
			Concurrency: n,
			ChunkSize:   cfg.ChunkSize,
			Verify:      true,
		})
		elapsed := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("%d-way copy: %w", n, err)
		}
		row := MultipartBenchRow{
			Streams:   n,
			Conns:     pool.Conns(),
			Bytes:     nb,
			ElapsedMS: float64(elapsed.Nanoseconds()) / 1e6,
			MBps:      mbps(nb, elapsed),
		}
		if baseline == 0 {
			baseline = row.MBps
		}
		if baseline > 0 {
			row.Speedup = row.MBps / baseline
		}
		if n == 4 {
			rep.Speedup4x = row.Speedup
		}
		rep.Rows = append(rep.Rows, row)
		// Drop the server copy so disk use stays bounded at one file.
		pool.Unlink(dst.Path)
	}
	return rep, nil
}
