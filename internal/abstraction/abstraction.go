// Package abstraction implements the abstraction layer of the tactical
// storage system (§5 of the paper): structures that ordinary users
// build out of raw file servers, without privileges on any of them.
//
//   - CFS, the central filesystem: direct, untranslated access to one
//     server.
//   - DPFS, the distributed private filesystem: the directory tree
//     lives in a filesystem private to one user; file data is spread
//     over many servers behind small stub files.
//   - DSFS, the distributed shared filesystem: identical, except the
//     directory tree itself lives on a file server, so many clients
//     share one namespace. Because every layer speaks vfs.FileSystem,
//     DSFS is literally DPFS instantiated with a remote metadata
//     filesystem — the recursive abstraction at work.
//
// The distributed shared database (DSDB) builds on the same stub
// mechanism; it lives in package gems together with its replication
// machinery.
//
// Every abstraction is failure coherent: losing a data server makes
// only the files stored there unavailable, while the directory tree
// remains navigable and other files remain usable.
package abstraction

import "tss/internal/vfs"

// DataServer is one storage resource participating in a distributed
// abstraction.
type DataServer struct {
	// Name identifies the server in stub files; it must be stable
	// across reconnections (typically the advertised server name).
	Name string
	// FS is the connection to the server.
	FS vfs.FileSystem
	// Dir is the directory on the server under which this abstraction
	// stores its data files (a distinguishable directory per
	// abstraction, which is what makes manual recovery possible when
	// the metadata server is lost — §5).
	Dir string
}

// CFS is the central filesystem: a single file server accessed without
// translation. Consistency and synchronization are managed by the host
// kernel on the server, giving Unix-like semantics with grid security —
// "roughly analogous to NFS ... by dispensing with buffering and
// caching" (§5).
type CFS struct {
	vfs.FileSystem
	name string
}

// NewCFS wraps a server connection as a central filesystem.
func NewCFS(name string, fs vfs.FileSystem) *CFS {
	return &CFS{FileSystem: fs, name: name}
}

// Name returns the server name this CFS is bound to.
func (c *CFS) Name() string { return c.name }
