package abstraction

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"tss/internal/faultfs"
	"tss/internal/vfs"
)

// corruptMirror builds a three-replica verifying mirror with replica 0
// wrapped in a fault layer, seeded with files numbered 0..files-1.
func corruptMirror(t *testing.T, files, size int) (*MirrorFS, *faultfs.FS, [][]byte) {
	t.Helper()
	var bad *faultfs.FS
	replicas := make([]vfs.FileSystem, 3)
	for i := range replicas {
		l, err := vfs.NewLocalFS(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			bad = faultfs.New(l)
			replicas[i] = bad
		} else {
			replicas[i] = l
		}
	}
	m, err := NewMirrorOptions(MirrorOptions{VerifyReads: true}, replicas...)
	if err != nil {
		t.Fatal(err)
	}
	payloads := make([][]byte, files)
	for i := range payloads {
		payloads[i] = bytes.Repeat([]byte(fmt.Sprintf("block-%03d ", i)), size/10+1)[:size]
		if err := vfs.WriteFile(m, fmt.Sprintf("/f%03d", i), payloads[i], 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return m, bad, payloads
}

// TestMirrorVerifyOnRead is the acceptance scenario: random bit flips
// on one of three replicas, and verify-on-read must deliver zero wrong
// payloads by failing over to a sibling whose digest checks out.
func TestMirrorVerifyOnRead(t *testing.T) {
	const files, size = 16, 8192
	m, bad, payloads := corruptMirror(t, files, size)
	bad.CorruptRandomly(1e-3, 11)

	for i, want := range payloads {
		var buf bytes.Buffer
		if _, err := m.GetFile(fmt.Sprintf("/f%03d", i), &buf); err != nil {
			t.Fatalf("verified read %d: %v", i, err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("read %d returned corrupted payload", i)
		}
	}
	if m.Stats.IntegrityFailovers.Load() == 0 {
		t.Error("no integrity failovers counted — corruption never hit the read path?")
	}
}

// TestMirrorScrubRepairs: a repairing scrub finds every divergent
// file, rewrites only the corrupt replica, and a second scrub is
// clean.
func TestMirrorScrubRepairs(t *testing.T) {
	const files, size = 12, 8192
	m, bad, payloads := corruptMirror(t, files, size)
	bad.CorruptRandomly(1e-3, 5)

	rep, err := m.Scrub(context.Background(), ScrubOptions{Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FilesScanned != files {
		t.Errorf("scanned %d files, want %d", rep.FilesScanned, files)
	}
	if rep.Divergent == 0 {
		t.Fatal("scrub found no divergence over a corrupted replica")
	}
	for _, f := range rep.Files {
		if f.Err != "" {
			t.Errorf("%s: %s", f.Path, f.Err)
		}
		for _, r := range f.Repaired {
			if r != 0 {
				t.Errorf("%s: repaired replica %d, but only replica 0 was corrupt", f.Path, r)
			}
		}
		if len(f.Repaired) != 1 {
			t.Errorf("%s: repaired %v, want exactly [0]", f.Path, f.Repaired)
		}
	}

	again, err := m.Scrub(context.Background(), ScrubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if again.Divergent != 0 {
		t.Fatalf("second scrub still sees %d divergent files", again.Divergent)
	}
	// And the repaired replica serves the original bytes.
	for i, want := range payloads {
		var buf bytes.Buffer
		if _, err := m.GetFile(fmt.Sprintf("/f%03d", i), &buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("post-repair read %d mismatch", i)
		}
	}
}

// TestMirrorCombinedFaults overlaps two failures: bit rot on replica 0
// while replica 1 is down entirely. Reads must still return correct
// bytes from replica 2; a scrub during the outage must refuse to
// arbitrate the resulting one-against-one tie; and once replica 1
// returns, scrub repairs exactly the corrupt replica.
func TestMirrorCombinedFaults(t *testing.T) {
	const files, size = 8, 8192
	var bad, draining *faultfs.FS
	replicas := make([]vfs.FileSystem, 3)
	for i := range replicas {
		l, err := vfs.NewLocalFS(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		switch i {
		case 0:
			bad = faultfs.New(l)
			replicas[i] = bad
		case 1:
			draining = faultfs.New(l)
			replicas[i] = draining
		default:
			replicas[i] = l
		}
	}
	m, err := NewMirrorOptions(MirrorOptions{VerifyReads: true}, replicas...)
	if err != nil {
		t.Fatal(err)
	}
	payloads := make([][]byte, files)
	for i := range payloads {
		payloads[i] = bytes.Repeat([]byte(fmt.Sprintf("pair-%03d ", i)), size/9+1)[:size]
		if err := vfs.WriteFile(m, fmt.Sprintf("/f%03d", i), payloads[i], 0o644); err != nil {
			t.Fatal(err)
		}
	}

	bad.CorruptRandomly(1e-3, 17)

	// Corruption alone first: reads succeed via majority verification,
	// and replica 0 accumulates the strike history that phase two leans
	// on — exactly what a real workload would have built up.
	for i, want := range payloads {
		var buf bytes.Buffer
		if _, err := m.GetFile(fmt.Sprintf("/f%03d", i), &buf); err != nil {
			t.Fatalf("read %d under corruption: %v", i, err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("read %d returned corrupted payload", i)
		}
	}

	// Now replica 1 drains away mid-corruption. Reads must still return
	// correct bytes: replica 0's strike record settles the one-against-
	// one disagreement in the clean replica's favor.
	draining.SetDown(true)
	for i, want := range payloads {
		var buf bytes.Buffer
		if _, err := m.GetFile(fmt.Sprintf("/f%03d", i), &buf); err != nil {
			t.Fatalf("read %d under combined faults: %v", i, err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("read %d returned corrupted payload under combined faults", i)
		}
	}

	// With replica 1 absent the corrupt and clean copies tie one vote
	// each at equal mtime: scrub must fail stop, not guess.
	rep, err := m.Scrub(context.Background(), ScrubOptions{Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Repaired != 0 {
		t.Errorf("scrub repaired %d copies during an unarbitrable tie", rep.Repaired)
	}
	// The untouched replica 2 must still hold pristine bytes.
	if got, err := vfs.ReadFile(replicas[2], "/f000"); err != nil || !bytes.Equal(got, payloads[0]) {
		t.Fatalf("healthy replica modified during tie (err=%v)", err)
	}

	// Replica 1 comes back: the vote is 2-1 and repair lands only on
	// the corrupt replica.
	draining.SetDown(false)
	rep, err = m.Scrub(context.Background(), ScrubOptions{Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Divergent != files {
		t.Errorf("scrub after recovery: %d divergent, want %d", rep.Divergent, files)
	}
	for _, f := range rep.Files {
		if f.Err != "" {
			t.Errorf("%s: %s", f.Path, f.Err)
		}
		if len(f.Repaired) != 1 || f.Repaired[0] != 0 {
			t.Errorf("%s: repaired %v, want exactly [0]", f.Path, f.Repaired)
		}
	}
	again, err := m.Scrub(context.Background(), ScrubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if again.Divergent != 0 {
		t.Fatalf("final scrub still sees %d divergent files", again.Divergent)
	}
}

// TestMirrorTwoReplicaDisagreement: with only two replicas and no
// arbiter, a digest disagreement is unarbitrable and the read fails
// with an integrity error rather than guessing.
func TestMirrorTwoReplicaDisagreement(t *testing.T) {
	l0, err := vfs.NewLocalFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	l1, err := vfs.NewLocalFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	bad := faultfs.New(l0)
	m, err := NewMirrorOptions(MirrorOptions{VerifyReads: true}, bad, l1)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("two-way "), 2048)
	if err := vfs.WriteFile(m, "/x", data, 0o644); err != nil {
		t.Fatal(err)
	}
	bad.CorruptRandomly(1e-2, 23)
	var buf bytes.Buffer
	_, rerr := m.GetFile("/x", &buf)
	if rerr == nil {
		t.Fatal("two-replica disagreement delivered data")
	}
	if !errors.Is(rerr, vfs.ErrIntegrity) {
		t.Errorf("disagreement error = %v, want ErrIntegrity", rerr)
	}
	if vfs.AsErrno(rerr) != vfs.EIO {
		t.Errorf("disagreement errno = %v, want EIO", vfs.AsErrno(rerr))
	}
}

// TestMirrorChecksumInterface: the mirror answers Checksum from the
// first replica that can, via the capability probe.
func TestMirrorChecksumInterface(t *testing.T) {
	m, _, payloads := corruptMirror(t, 1, 4096)
	cs := vfs.Capabilities(m).Checksummer
	if cs == nil {
		t.Fatal("mirror offers no Checksummer")
	}
	sum, err := cs.Checksum("/f000", vfs.AlgoSHA256)
	if err != nil {
		t.Fatal(err)
	}
	want, err := vfs.HashFile(m, "/f000", vfs.AlgoSHA256)
	if err != nil {
		t.Fatal(err)
	}
	if sum != want || len(payloads) != 1 {
		t.Errorf("mirror checksum = %s, want %s", sum, want)
	}
}
