package abstraction

import (
	"sync"
	"testing"
	"time"

	"tss/internal/faultfs"
	"tss/internal/resilient"
	"tss/internal/vfs"
)

// resilientMirror builds a two-replica mirror over fault-injected
// local filesystems with a deterministic (jitter-free) breaker.
func resilientMirror(t *testing.T, opts MirrorOptions) (*MirrorFS, *faultfs.FS, *faultfs.FS) {
	t.Helper()
	if opts.Breaker.Threshold == 0 {
		opts.Breaker.Threshold = 3
	}
	if opts.Breaker.Jitter == 0 {
		opts.Breaker.Jitter = -1
	}
	a := faultfs.New(localFS(t))
	b := faultfs.New(localFS(t))
	m, err := NewMirrorOptions(opts, a, b)
	if err != nil {
		t.Fatal(err)
	}
	return m, a, b
}

// The acceptance property of the health layer: once replica 0's
// breaker opens, reads must not pay the dead replica's latency on
// every operation — the dead replica sees at most one probe per
// re-probe interval, not one attempt per read.
func TestMirrorBreakerStopsPayingDeadReplica(t *testing.T) {
	const reprobe = 300 * time.Millisecond
	m, a, _ := resilientMirror(t, MirrorOptions{
		Breaker: resilient.BreakerConfig{Threshold: 3, ReprobeBase: reprobe, ReprobeMax: time.Second, Jitter: -1},
	})
	if err := vfs.WriteFile(m, "/f", []byte("replicated"), 0o644); err != nil {
		t.Fatal(err)
	}
	a.SetDown(true)
	a.SetLatency(20 * time.Millisecond) // the dead replica charges a timeout

	// Three failing opens trip replica 0's breaker.
	for i := 0; i < 3; i++ {
		if data, err := vfs.ReadFile(m, "/f"); err != nil || string(data) != "replicated" {
			t.Fatalf("read %d while tripping: %q, %v", i, data, err)
		}
	}
	if st := m.Health()[0]; st.State != resilient.Open {
		t.Fatalf("replica 0 breaker = %v after %d failures, want open", st.State, 3)
	}
	if got := m.Stats.Trips.Load(); got != 1 {
		t.Errorf("trips = %d, want 1", got)
	}

	callsAtTrip := a.Calls()
	start := time.Now()
	const reads = 30
	for i := 0; i < reads; i++ {
		if data, err := vfs.ReadFile(m, "/f"); err != nil || string(data) != "replicated" {
			t.Fatalf("read %d with breaker open: %q, %v", i, data, err)
		}
	}
	elapsed := time.Since(start)

	// Attempts against the dead replica are bounded by the probe
	// schedule, not the read count.
	probesAllowed := int64(elapsed/reprobe) + 1
	if extra := a.Calls() - callsAtTrip; extra > probesAllowed {
		t.Errorf("dead replica saw %d attempts over %v (max %d probes allowed)", extra, elapsed, probesAllowed)
	}
	// And the reads themselves never waited on the dead replica: 30
	// reads at 20ms each would cost 600ms if they had.
	if elapsed > reads*20*time.Millisecond/2 {
		t.Errorf("%d reads took %v: still paying the dead replica's latency", reads, elapsed)
	}
}

// A replica that comes back is re-admitted automatically by a
// half-open probe — no manual intervention, as §6 demands of recovery.
func TestMirrorReadmitsRecoveredReplica(t *testing.T) {
	m, a, _ := resilientMirror(t, MirrorOptions{
		Breaker: resilient.BreakerConfig{Threshold: 3, ReprobeBase: 30 * time.Millisecond, ReprobeMax: 100 * time.Millisecond, Jitter: -1},
	})
	if err := vfs.WriteFile(m, "/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	a.SetDown(true)
	for i := 0; i < 3; i++ {
		if _, err := vfs.ReadFile(m, "/f"); err != nil {
			t.Fatal(err)
		}
	}
	if st := m.Health()[0]; st.State != resilient.Open {
		t.Fatalf("breaker = %v, want open", st.State)
	}

	a.SetDown(false) // server restored
	deadline := time.Now().Add(5 * time.Second)
	for m.Health()[0].State != resilient.Closed {
		if time.Now().After(deadline) {
			t.Fatalf("replica 0 not re-admitted; health = %+v", m.Health()[0])
		}
		// Regular traffic piggybacks the probe schedule.
		if _, err := vfs.ReadFile(m, "/f"); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := m.Stats.Readmits.Load(); got < 1 {
		t.Errorf("readmits = %d, want >= 1", got)
	}
	// Re-admitted means the replica serves reads again.
	before := a.Calls()
	if _, err := vfs.ReadFile(m, "/f"); err != nil {
		t.Fatal(err)
	}
	if a.Calls() == before {
		t.Error("re-admitted replica got no traffic")
	}
}

// With hedging enabled, a slow-but-alive replica does not hold a read
// hostage: after the hedge delay the next healthy replica races it and
// the fast answer wins.
func TestMirrorHedgedReadWins(t *testing.T) {
	m, a, _ := resilientMirror(t, MirrorOptions{Hedge: 10 * time.Millisecond})
	if err := vfs.WriteFile(m, "/f", []byte("fast answer"), 0o644); err != nil {
		t.Fatal(err)
	}
	a.SetLatency(500 * time.Millisecond) // alive, but glacial

	start := time.Now()
	data, err := vfs.ReadFile(m, "/f")
	elapsed := time.Since(start)
	if err != nil || string(data) != "fast answer" {
		t.Fatalf("hedged read: %q, %v", data, err)
	}
	if elapsed >= 400*time.Millisecond {
		t.Errorf("hedged read took %v: waited out the slow replica", elapsed)
	}
	if m.Stats.Hedges.Load() < 1 {
		t.Error("no hedge was launched")
	}
	if m.Stats.HedgeWins.Load() < 1 {
		t.Error("hedge launched but never won")
	}
}

// ESTALE is a replica failure, not a request failure: a replica that
// restarted and invalidated its handles is skipped — but it does not
// feed the breaker, because its server demonstrably answers.
func TestMirrorEstaleFailsOver(t *testing.T) {
	m, a, _ := resilientMirror(t, MirrorOptions{})
	if err := vfs.WriteFile(m, "/f", []byte("good copy"), 0o644); err != nil {
		t.Fatal(err)
	}
	a.SetError(vfs.ESTALE)
	a.SetDown(true)
	for i := 0; i < 5; i++ {
		if data, err := vfs.ReadFile(m, "/f"); err != nil || string(data) != "good copy" {
			t.Fatalf("read %d over stale replica: %q, %v", i, data, err)
		}
	}
	// Semantic proof of reachability: the breaker stays closed.
	if st := m.Health()[0]; st.State != resilient.Closed || st.Trips != 0 {
		t.Errorf("stale replica breaker = %+v, want closed with no trips", st)
	}
}

// A read-mode mirror file whose replica dies mid-read fails over to
// another replica by reopening there — the caller never notices.
func TestMirrorFileFailsOverMidRead(t *testing.T) {
	m, a, _ := resilientMirror(t, MirrorOptions{})
	if err := vfs.WriteFile(m, "/f", []byte("survives failover"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := m.Open("/f", vfs.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 8)
	if _, err := f.Pread(buf, 0); err != nil {
		t.Fatal(err)
	}
	a.SetDown(true) // the replica backing the open file dies
	n, err := f.Pread(buf, 9)
	if err != nil || string(buf[:n]) != "failover" {
		t.Fatalf("pread after replica death: %q, %v", buf[:n], err)
	}
}

// With every breaker open, operations fail fast with ENOTCONN instead
// of probing every dead replica in sequence.
func TestMirrorFastFailWhenAllOpen(t *testing.T) {
	m, a, b := resilientMirror(t, MirrorOptions{
		Breaker: resilient.BreakerConfig{Threshold: 1, ReprobeBase: time.Hour, ReprobeMax: time.Hour, Jitter: -1},
	})
	a.SetDown(true)
	b.SetDown(true)
	if _, err := vfs.ReadFile(m, "/f"); !resilient.TransportError(err) {
		t.Fatalf("read with both down = %v, want transport error", err)
	}
	if _, err := vfs.ReadFile(m, "/f"); vfs.AsErrno(err) != vfs.ENOTCONN {
		t.Fatalf("read with breakers open = %v, want ENOTCONN", err)
	}
	callsA, callsB := a.Calls(), b.Calls()
	for i := 0; i < 10; i++ {
		if _, err := vfs.ReadFile(m, "/f"); vfs.AsErrno(err) != vfs.ENOTCONN {
			t.Fatalf("fast-fail read = %v", err)
		}
	}
	if a.Calls() != callsA || b.Calls() != callsB {
		t.Errorf("fast-fail reads still touched dead replicas (%d, %d attempts)",
			a.Calls()-callsA, b.Calls()-callsB)
	}
	if m.Stats.FastFails.Load() == 0 {
		t.Error("FastFails counter never moved")
	}
}

// The stripe drives member operations through the shared retry policy:
// a flaky window shorter than the attempt budget is invisible to the
// caller, and one longer than the budget surfaces as ETIMEDOUT.
func TestStripeRetriesFlakyMember(t *testing.T) {
	meta := localFS(t)
	m0 := faultfs.New(localFS(t))
	m1 := faultfs.New(localFS(t))
	s, err := NewStriped(meta, []DataServer{
		{Name: "s0", FS: m0},
		{Name: "s1", FS: m1},
	}, StripeOptions{
		StripeSize: 4,
		Retry:      resilient.Policy{Attempts: 3, Base: time.Millisecond, Sleep: func(time.Duration) {}},
	})
	if err != nil {
		t.Fatal(err)
	}
	content := []byte("0123456789abcdef")
	if err := vfs.WriteFile(s, "/f", content, 0o644); err != nil {
		t.Fatal(err)
	}

	// A brown-out of 2 consecutive failures: absorbed by the retries.
	m0.FailNext(2)
	data, err := vfs.ReadFile(s, "/f")
	if err != nil || string(data) != string(content) {
		t.Fatalf("read through flaky window: %q, %v", data, err)
	}
	if m0.Calls() == 0 {
		t.Fatal("member 0 never attempted")
	}

	// A brown-out longer than the attempt budget: gives up with
	// ETIMEDOUT, the §6 errno for abandoned recovery.
	m0.FailNext(100)
	if _, err := vfs.ReadFile(s, "/f"); vfs.AsErrno(err) != vfs.ETIMEDOUT {
		t.Fatalf("read past retry budget = %v, want ETIMEDOUT", err)
	}
	m0.FailNext(0) // window closed: service restored
	if data, err := vfs.ReadFile(s, "/f"); err != nil || string(data) != string(content) {
		t.Fatalf("read after recovery: %q, %v", data, err)
	}
}

// reconnectFS models the chirp client's transport contract: once the
// connection drops, every operation returns ENOTCONN until someone
// calls Reconnect while the server is up — the client never redials on
// its own (§6: recovery belongs to the caller).
type reconnectFS struct {
	vfs.FileSystem
	mu        sync.Mutex
	up        bool // the server side is alive
	connected bool // the client side has a live connection
}

func (r *reconnectFS) ok() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.connected {
		return vfs.ENOTCONN
	}
	return nil
}

func (r *reconnectFS) Reconnect() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.up {
		return vfs.ENOTCONN
	}
	r.connected = true
	return nil
}

func (r *reconnectFS) kill() {
	r.mu.Lock()
	r.up, r.connected = false, false
	r.mu.Unlock()
}

func (r *reconnectFS) restore() {
	r.mu.Lock()
	r.up = true // the connection stays down until Reconnect
	r.mu.Unlock()
}

func (r *reconnectFS) Stat(path string) (vfs.FileInfo, error) {
	if err := r.ok(); err != nil {
		return vfs.FileInfo{}, err
	}
	return r.FileSystem.Stat(path)
}

func (r *reconnectFS) Open(path string, flags int, mode uint32) (vfs.File, error) {
	if err := r.ok(); err != nil {
		return nil, err
	}
	return r.FileSystem.Open(path, flags, mode)
}

// A replica behind a connection-oriented client (chirp) is only
// re-admitted if the health probe re-establishes the transport first:
// the server coming back does not revive a dropped connection, so the
// default probe must call Reconnect before asking for proof of life.
func TestMirrorProbeReconnectsBackend(t *testing.T) {
	a := &reconnectFS{FileSystem: localFS(t), up: true, connected: true}
	b := localFS(t)
	m, err := NewMirrorOptions(MirrorOptions{
		Breaker: resilient.BreakerConfig{Threshold: 2, ReprobeBase: 20 * time.Millisecond, ReprobeMax: 50 * time.Millisecond, Jitter: -1},
	}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(m, "/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	a.kill()
	for i := 0; i < 2; i++ {
		if _, err := vfs.ReadFile(m, "/f"); err != nil {
			t.Fatal(err)
		}
	}
	if st := m.Health()[0]; st.State != resilient.Open {
		t.Fatalf("breaker = %v, want open", st.State)
	}

	// The server returns, but the client-side connection is still dead:
	// only a probe that reconnects can bring the replica back.
	a.restore()
	deadline := time.Now().Add(5 * time.Second)
	for m.Health()[0].State != resilient.Closed {
		if time.Now().After(deadline) {
			t.Fatalf("replica never re-admitted: probe did not reconnect; health = %+v", m.Health()[0])
		}
		if _, err := vfs.ReadFile(m, "/f"); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if m.Stats.Readmits.Load() < 1 {
		t.Errorf("readmits = %d, want >= 1", m.Stats.Readmits.Load())
	}
}
