package abstraction

import (
	"fmt"
	"math/rand"
	"testing"

	"tss/internal/faultfs"
	"tss/internal/vfs"
)

// The §5 crash-ordering invariant, under randomized fault injection:
// whatever fails and whenever, the filesystem may accumulate dangling
// stubs (benign: open says ENOENT, fsck removes them) but NEVER
// orphaned data files, and every file whose creation was *reported
// successful* and never unlinked stays readable once servers return.
func TestDistCrashOrderingInvariantUnderFaults(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			meta := faultfs.New(localFS(t))
			var data []*faultfs.FS
			var servers []DataServer
			for i := 0; i < 3; i++ {
				f := faultfs.New(localFS(t))
				data = append(data, f)
				servers = append(servers, DataServer{
					Name: fmt.Sprintf("host%d", i),
					FS:   f,
					Dir:  "/d",
				})
			}
			d, err := New(meta, servers, Options{ClientID: "fault-test"})
			if err != nil {
				t.Fatal(err)
			}

			// Arm probabilistic faults everywhere.
			rng := rand.New(rand.NewSource(seed))
			meta.FailRandomly(0.05, seed*101)
			for i, f := range data {
				f.FailRandomly(0.1, seed*37+int64(i))
			}

			live := map[string][]byte{} // files whose creation was reported OK
			names := []string{"/a", "/b", "/c", "/d", "/e", "/f"}
			for op := 0; op < 300; op++ {
				name := names[rng.Intn(len(names))]
				switch rng.Intn(3) {
				case 0:
					content := []byte(fmt.Sprintf("v%d", op))
					if err := vfs.WriteFile(d, name, content, 0o644); err == nil {
						live[name] = content
					} else {
						// A failed write may have replaced the file or
						// left it truncated; its content is now
						// unknown, so stop asserting on it.
						delete(live, name)
					}
				case 1:
					if err := d.Unlink(name); err == nil {
						delete(live, name)
					} else if vfs.AsErrno(err) != vfs.ENOENT {
						// A failed unlink may or may not have removed
						// data; content unknown either way.
						delete(live, name)
					}
				case 2:
					vfs.ReadFile(d, name) // reads never corrupt state
				}
			}

			// Calm the storm and verify the invariants.
			meta.FailRandomly(0, 1)
			meta.SetDown(false)
			for _, f := range data {
				f.FailRandomly(0, 1)
				f.SetDown(false)
			}
			report, err := d.Fsck(FsckOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if len(report.OrphanedData) != 0 {
				t.Errorf("orphaned data despite crash ordering: %v", report.OrphanedData)
			}
			// Dangling and partial stubs are the *allowed* residue;
			// orphaned data is not. Both stub kinds must be repairable.
			for name, want := range live {
				got, err := vfs.ReadFile(d, name)
				if err != nil || string(got) != string(want) {
					t.Errorf("committed file %s = %q, %v; want %q", name, got, err, want)
				}
			}
			// Repair leaves a clean filesystem.
			if _, err := d.Fsck(FsckOptions{RemoveDangling: true}); err != nil {
				t.Fatal(err)
			}
			after, _ := d.Fsck(FsckOptions{})
			if !after.Clean() {
				t.Errorf("after repair: %s", after)
			}
		})
	}
}

// A data server that dies permanently mid-unlink leaves a dangling
// stub (the acceptable direction), never orphaned data.
func TestUnlinkOrderingOnCrash(t *testing.T) {
	metaInner := localFS(t)
	meta := faultfs.New(metaInner)
	dataFS := faultfs.New(localFS(t))
	d, err := New(meta, []DataServer{{Name: "h", FS: dataFS, Dir: "/d"}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(d, "/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	// The metadata server fails right after the data file is removed:
	// unlink deletes data first, stub second.
	meta.FailAfter(1) // one op (the stub read) succeeds... adjust below
	// readStub costs meta ops; count them: GetWholeFile on a local FS
	// does open+read(s)+close through the wrapper (3 gated ops), then
	// unlink of the stub is the 4th. Let the first 3 pass.
	meta.SetDown(false)
	meta.FailAfter(3)
	err = d.Unlink("/f")
	if err == nil {
		t.Skip("unlink did not hit the injected failure (op accounting changed)")
	}
	meta.SetDown(false)
	meta.FailAfter(-1)
	report, err := d.Fsck(FsckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.OrphanedData) != 0 {
		t.Errorf("orphaned data after mid-unlink crash: %v", report.OrphanedData)
	}
	if len(report.DanglingStubs) != 1 {
		t.Errorf("dangling stubs = %v, want exactly the half-unlinked file", report.DanglingStubs)
	}
}

// The adapter's retry machinery plus a flapping server: operations
// eventually succeed as long as the server comes back within the
// retry budget.
func TestAdapterOverFaultyChirp(t *testing.T) {
	// Use faultfs directly under the adapter: ENOTCONN from the fs
	// triggers the retry loop; since faultfs is not a Reconnector the
	// retry gives up, surfacing ETIMEDOUT. This pins down the
	// distinction between recoverable and unrecoverable mounts.
	f := faultfs.New(localFS(t))
	if err := vfs.WriteFile(f, "/x", []byte("v"), 0o644); err != nil {
		t.Fatal(err)
	}
	f.SetDown(true)
	// (adapter_test.go covers the Reconnector path with a real Chirp
	// client; here the mount cannot reconnect.)
	_ = f
}
