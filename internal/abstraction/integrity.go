package abstraction

import (
	"bytes"
	"encoding/hex"
	"io"

	"tss/internal/vfs"
)

// Verify-on-read for the mirror. The wire digests of chirp protect a
// transfer in flight, but a replica whose disk silently corrupted a
// file will hash its own wrong bytes and produce a perfectly matching
// trailer — the lie is end-to-end consistent. The only authority that
// can catch it is another copy of the same data, so the mirror checks
// each whole-file read against a sibling replica's digest: one cheap
// checksum RPC (no second data transfer) buys the guarantee that a
// corrupt replica cannot answer a read while a healthy one exists.

var (
	_ vfs.FileGetter  = (*MirrorFS)(nil)
	_ vfs.Checksummer = (*MirrorFS)(nil)
)

// Checksum digests the file on the healthiest reachable replica
// (vfs.Checksummer). Note this vouches for one replica's copy, not for
// replica agreement — Scrub is the cross-replica comparison.
func (m *MirrorFS) Checksum(path, algo string) (string, error) {
	sum, _, err := mirrorRead(m, func(fs vfs.FileSystem) (string, error) {
		return vfs.ChecksumFile(fs, path, algo)
	}, nil)
	return sum, err
}

// readFileTo streams the whole file from one replica, via its getfile
// fast path when present and an open/pread loop otherwise.
func readFileTo(fs vfs.FileSystem, path string, w io.Writer) (int64, error) {
	if g := vfs.Capabilities(fs).FileGetter; g != nil {
		return g.GetFile(path, w)
	}
	f, err := fs.Open(path, vfs.O_RDONLY, 0)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	buf := make([]byte, 256<<10)
	var off int64
	for {
		n, err := f.Pread(buf, off)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return off, werr
			}
			off += int64(n)
		}
		if err == io.EOF || (err == nil && n == 0) {
			return off, nil
		}
		if err != nil {
			return off, err
		}
	}
}

// countingWriter tracks how many bytes escaped to the destination, so
// a failover path knows whether a retry would append garbage.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// GetFile streams the whole named file to w (vfs.FileGetter), served
// by the healthiest replica. With MirrorOptions.VerifyReads the
// payload is confirmed against a sibling digest first — see
// getFileVerified.
func (m *MirrorFS) GetFile(path string, w io.Writer) (int64, error) {
	if m.verifyReads {
		return m.getFileVerified(path, w)
	}
	ready, demoted := m.order()
	for _, i := range demoted {
		m.maybeProbe(i)
	}
	if len(ready) == 0 {
		m.Stats.FastFails.Add(1)
		m.mFastFails.Inc()
		return 0, vfs.ENOTCONN
	}
	var lastErr error = vfs.ENOTCONN
	for _, i := range ready {
		cw := &countingWriter{w: w}
		n, err := readFileTo(m.replicas[i], path, cw)
		m.record(i, err)
		if err == nil || !unreachable(err) {
			return n, err
		}
		lastErr = err
		if cw.n > 0 {
			// Bytes already escaped to w; retrying on a sibling would
			// append a second copy after the torn prefix.
			return cw.n, lastErr
		}
	}
	return 0, lastErr
}

// getFileVerified buffers the payload from one replica, hashes it, and
// delivers it only once a sibling replica's digest confirms it. A
// payload a sibling *majority* votes down demotes its replica (the
// mismatch is EIO, which the breaker counts) and the read fails over;
// with a single reachable replica there is no second opinion and the
// payload is delivered unverified — availability wins when redundancy
// is already gone. A one-against-one disagreement is arbitrated by
// strike history: the replica previously caught serving voted-down
// bytes is the suspect, so a clean-history copy still reads correctly
// while a known-bad sibling lingers (corruption plus an outage must
// not take reads down). With equal histories nothing distinguishes the
// copies and the read fails with ErrIntegrity: fail-stop beats serving
// bytes that are wrong with probability one half.
func (m *MirrorFS) getFileVerified(path string, w io.Writer) (int64, error) {
	ready, demoted := m.order()
	for _, i := range demoted {
		m.maybeProbe(i)
	}
	if len(ready) == 0 {
		m.Stats.FastFails.Add(1)
		m.mFastFails.Inc()
		return 0, vfs.ENOTCONN
	}
	var lastErr error = vfs.ENOTCONN
	for _, i := range ready {
		var buf bytes.Buffer
		_, err := readFileTo(m.replicas[i], path, &buf)
		if err != nil {
			m.record(i, err)
			if unreachable(err) {
				lastErr = err
				continue
			}
			return 0, err
		}
		got, err := digestOf(buf.Bytes(), m.sumAlgo)
		if err != nil {
			return 0, err
		}
		v := m.confirmDigest(ready, i, path, got)
		deliver := v.confirmed || v.answered == 0
		if !deliver && v.dissents == 1 &&
			m.strikes[v.dissenter].Load() > m.strikes[i].Load() {
			// The lone dissenter has a record of serving voted-down
			// bytes; its objection does not outweigh a cleaner history.
			deliver = true
		}
		if deliver {
			// Success lands on the breaker only now: a transfer that
			// verifies. Recording it at transfer time would reset the
			// consecutive-failure count and keep a corrupt replica from
			// ever tripping its breaker.
			m.record(i, nil)
			n, werr := w.Write(buf.Bytes())
			return int64(n), werr
		}
		ierr := vfs.ChecksumMismatch(path, m.sumAlgo, v.dissent, got)
		lastErr = ierr
		if v.dissents >= 2 ||
			(v.dissents == 1 && m.strikes[i].Load() > m.strikes[v.dissenter].Load()) {
			// A majority dissents, or the lone dissenter has the cleaner
			// record: replica i is the suspect. Strike it, charge its
			// breaker, and fail over; the sibling's own payload gets the
			// same scrutiny on the next iteration.
			m.strikes[i].Add(1)
			m.record(i, ierr)
			m.Stats.IntegrityFailovers.Add(1)
			m.mIntegrityFails.Inc()
			continue
		}
		// One against one with equal records: unarbitrable. Fail stop
		// without charging either breaker — blind blame would demote a
		// healthy replica half the time.
	}
	return 0, lastErr
}

// verdict is what the sibling replicas had to say about one payload.
type verdict struct {
	confirmed bool   // some sibling's digest matched
	answered  int    // siblings that produced a digest at all
	dissents  int    // siblings whose digest disagreed
	dissent   string // a dissenting digest, for the error message
	dissenter int    // replica index of the last dissenter
}

// confirmDigest asks the sibling replicas of i whether any of them
// holds bytes digesting to got.
func (m *MirrorFS) confirmDigest(ready []int, i int, path, got string) verdict {
	var v verdict
	for _, j := range ready {
		if j == i {
			continue
		}
		sum, err := vfs.ChecksumFile(m.replicas[j], path, m.sumAlgo)
		m.record(j, err)
		if err != nil {
			continue
		}
		v.answered++
		if sum == got {
			v.confirmed = true
			return v
		}
		v.dissents++
		v.dissent = sum
		v.dissenter = j
	}
	return v
}

// digestOf hashes an in-memory payload.
func digestOf(b []byte, algo string) (string, error) {
	h, err := vfs.NewHash(algo)
	if err != nil {
		return "", err
	}
	h.Write(b)
	return hex.EncodeToString(h.Sum(nil)), nil
}
