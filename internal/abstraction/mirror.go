package abstraction

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tss/internal/obs"
	"tss/internal/resilient"
	"tss/internal/vfs"
)

// MirrorFS transparently replicates a filesystem across N underlying
// filesystems — one of the §10 extensions ("One may imagine
// filesystems that transparently ... replicate ... data"), built as
// one more recursive abstraction: each replica can be a Chirp client,
// a DSFS, a local directory, or another mirror.
//
// Semantics, kept as simple as the paper's direct-access philosophy
// demands: modifying operations are applied to every *reachable*
// replica and succeed if they succeed everywhere reachable (with at
// least one reachable); reads are served by the healthiest replica. A
// replica that was down during writes is stale until re-synchronized —
// continuous repair is the job of GEMS-style auditing, not of the
// mirror itself.
//
// Health is tracked with one circuit breaker per replica: after enough
// consecutive transport failures the replica is demoted and skipped,
// so reads stop paying a dead replica's connect timeout on every
// operation. Demoted replicas are re-admitted by background half-open
// probes on a jittered exponential schedule; the probes piggyback on
// regular traffic (TryProbe) but run in their own goroutines so no
// user operation ever waits on a probe. With Hedge > 0, a read that
// has not answered within the hedge delay is raced against the next
// healthy replica.
type MirrorFS struct {
	replicas []vfs.FileSystem
	breakers []*resilient.Breaker
	hedge    time.Duration
	quorum   int
	probe    func(fs vfs.FileSystem) error

	// Verify-on-read configuration (see integrity.go).
	verifyReads bool
	sumAlgo     string
	// strikes counts, per replica, the times its payload was voted down
	// by a sibling majority. It arbitrates one-against-one digest
	// disagreements: a replica with a record of serving bad bytes does
	// not get to veto a clean-history sibling (integrity.go). A
	// successful scrub repair resets the repaired replica's count.
	strikes []atomic.Int64

	// pushbackNanos holds, per replica, the UnixNano until which the
	// replica is considered to be shedding load (it answered EAGAIN,
	// DESIGN.md §15). A pushing-back replica is healthy — its breaker is
	// left alone — but order() serves it last and hedging skips it, so
	// the mirror stops piling retries onto a server that asked for room.
	pushbackNanos []atomic.Int64

	// Registry counters shadowing Stats (nil without a registry): the
	// same numbers, visible on /metrics next to the latency histograms.
	mTrips          *obs.Counter
	mProbes         *obs.Counter
	mReadmits       *obs.Counter
	mHedges         *obs.Counter
	mHedgeWins      *obs.Counter
	mHedgeLosses    *obs.Counter
	mFastFails      *obs.Counter
	mPushbacks      *obs.Counter
	mIntegrityFails *obs.Counter
	mScrubFiles     *obs.Counter
	mScrubDivergent *obs.Counter
	mScrubRepaired  *obs.Counter

	// Stats exposes health and hedging counters.
	Stats MirrorStats
}

// MirrorStats counts mirror health activity; all fields are safe to
// read concurrently. The paper's users distrust transparent layers
// (§3) — counters make this one observable.
type MirrorStats struct {
	// Trips counts breaker Closed→Open transitions across replicas.
	Trips atomic.Int64
	// Probes counts half-open probes launched.
	Probes atomic.Int64
	// Readmits counts replicas re-admitted by a successful probe.
	Readmits atomic.Int64
	// Hedges counts hedged requests launched.
	Hedges atomic.Int64
	// HedgeWins counts reads answered first by the hedge.
	HedgeWins atomic.Int64
	// HedgeLosses counts hedged requests that lost the race (their
	// result was reaped after another replica answered first). Together
	// with HedgeWins this tells whether the hedge delay is earning its
	// extra load.
	HedgeLosses atomic.Int64
	// FastFails counts operations refused immediately because every
	// replica's breaker was open.
	FastFails atomic.Int64
	// Pushbacks counts EAGAIN answers from replicas — overload shedding
	// noted in the pushback window, deliberately not charged to the
	// breakers (a busy server is not a dead server).
	Pushbacks atomic.Int64
	// IntegrityFailovers counts verified reads whose payload failed
	// cross-replica digest confirmation and were re-served from a
	// sibling replica (integrity.go).
	IntegrityFailovers atomic.Int64
	// ScrubFiles, ScrubDivergent, and ScrubRepaired count scrub
	// activity: files examined, files whose replicas disagreed, and
	// replica copies rewritten (scrub.go).
	ScrubFiles     atomic.Int64
	ScrubDivergent atomic.Int64
	ScrubRepaired  atomic.Int64
}

// MirrorOptions configures the mirror's health layer. The zero value
// gives breaker defaults and no hedging.
type MirrorOptions struct {
	// Breaker configures the per-replica circuit breakers.
	Breaker resilient.BreakerConfig
	// Hedge, when > 0, launches the same read on the next healthy
	// replica if the first has not answered within this delay.
	Hedge time.Duration
	// Probe is the half-open health check run against a demoted
	// replica; nil means Stat of the root.
	Probe func(fs vfs.FileSystem) error
	// WriteQuorum is the minimum number of replicas a modifying
	// operation must succeed on. Zero keeps the historical "everywhere
	// reachable, at least one" semantics. Setting it to a majority
	// (n/2+1) makes exclusive-create mutual exclusion hold across
	// network partitions: two disjoint replica subsets cannot both
	// reach a majority, and any two majorities intersect in a replica
	// that answers the loser's O_EXCL with EEXIST. A failed exclusive
	// create undoes its partial creates best-effort; other partially
	// applied operations are left for scrub to reconcile.
	WriteQuorum int
	// VerifyReads cross-checks every whole-file read against a sibling
	// replica's digest before delivering it (integrity.go): a replica
	// serving silently corrupted bytes is demoted and the read fails
	// over, so corruption never reaches the caller while a healthy
	// copy exists.
	VerifyReads bool
	// ChecksumAlgo selects the digest for verification and scrubbing
	// (default vfs.DefaultAlgo).
	ChecksumAlgo string
	// Metrics, when non-nil, receives per-replica breaker state gauges
	// ("<layer>.replica<i>.breaker_state": 0 closed, 1 open, 2
	// half-open) and health counters under the layer prefix.
	Metrics *obs.Registry
	// Layer tags this mirror's metrics (default "mirror").
	Layer string
}

var _ vfs.FileSystem = (*MirrorFS)(nil)

// NewMirror mirrors across the given filesystems with default options.
func NewMirror(replicas ...vfs.FileSystem) (*MirrorFS, error) {
	return NewMirrorOptions(MirrorOptions{}, replicas...)
}

// NewMirrorOptions mirrors across the given filesystems with explicit
// health options.
func NewMirrorOptions(opts MirrorOptions, replicas ...vfs.FileSystem) (*MirrorFS, error) {
	if len(replicas) == 0 {
		return nil, vfs.EINVAL
	}
	if opts.WriteQuorum < 0 || opts.WriteQuorum > len(replicas) {
		return nil, vfs.EINVAL
	}
	probe := opts.Probe
	if probe == nil {
		// Probes only run against demoted replicas, whose transport is
		// presumed dead — clients like chirp's never redial on their
		// own (recovery belongs to the caller, §6), so re-establish
		// the connection before asking for proof of life.
		probe = func(fs vfs.FileSystem) error {
			if rc := vfs.Capabilities(fs).Reconnector; rc != nil {
				if err := rc.Reconnect(); err != nil {
					return err
				}
			}
			_, err := fs.Stat("/")
			return err
		}
	}
	algo := opts.ChecksumAlgo
	if algo == "" {
		algo = vfs.DefaultAlgo
	}
	m := &MirrorFS{
		replicas:    replicas,
		breakers:    make([]*resilient.Breaker, len(replicas)),
		hedge:       opts.Hedge,
		quorum:      opts.WriteQuorum,
		probe:       probe,
		verifyReads: opts.VerifyReads,
		sumAlgo:     algo,
		strikes:     make([]atomic.Int64, len(replicas)),
	}
	m.pushbackNanos = make([]atomic.Int64, len(replicas))
	layer := opts.Layer
	if layer == "" {
		layer = "mirror"
	}
	if reg := opts.Metrics; reg != nil {
		m.mTrips = reg.Counter(layer + ".trips")
		m.mProbes = reg.Counter(layer + ".probes")
		m.mReadmits = reg.Counter(layer + ".readmits")
		m.mHedges = reg.Counter(layer + ".hedges")
		m.mHedgeWins = reg.Counter(layer + ".hedge_wins")
		m.mHedgeLosses = reg.Counter(layer + ".hedge_losses")
		m.mFastFails = reg.Counter(layer + ".fast_fails")
		m.mPushbacks = reg.Counter(layer + ".pushbacks")
		m.mIntegrityFails = reg.Counter(layer + ".integrity_failover")
		m.mScrubFiles = reg.Counter(layer + ".scrub_files")
		m.mScrubDivergent = reg.Counter(layer + ".scrub_divergent")
		m.mScrubRepaired = reg.Counter(layer + ".scrub_repaired")
	}
	for i := range replicas {
		cfg := opts.Breaker
		if reg := opts.Metrics; reg != nil {
			// Chain a state gauge onto any observer the caller installed:
			// each transition lands the new state in
			// "<layer>.replica<i>.breaker_state".
			gauge := reg.Gauge(fmt.Sprintf("%s.replica%d.breaker_state", layer, i))
			user := cfg.OnStateChange
			cfg.OnStateChange = func(from, to resilient.State) {
				gauge.Set(int64(to))
				if user != nil {
					user(from, to)
				}
			}
		}
		m.breakers[i] = resilient.NewBreaker(cfg)
	}
	return m, nil
}

// Health returns a breaker snapshot per replica, in replica order.
func (m *MirrorFS) Health() []resilient.BreakerStats {
	out := make([]resilient.BreakerStats, len(m.breakers))
	for i, b := range m.breakers {
		out[i] = b.Stats()
	}
	return out
}

// unreachable reports whether err means the replica (not the request)
// failed, so the operation should carry on with the other replicas.
// ESTALE counts too: a replica that restarted and invalidated its
// handles cannot serve this operation, even though its server answers.
func unreachable(err error) bool {
	return resilient.TransportError(err) || vfs.AsErrno(err) == vfs.ESTALE
}

// mirrorPushbackWindow is how long one EAGAIN deprioritizes a replica.
// Long enough that a retry after full-jitter backoff lands on a
// sibling; short enough that a recovered server is back in rotation
// within a breath.
const mirrorPushbackWindow = time.Second

// record reports an operation outcome against replica i's breaker.
// EAGAIN is load shedding, not failure: the replica answered, it is
// just busy. It opens the pushback window — order() serves the replica
// last and hedging skips it while it lasts — and leaves the breaker's
// failure accounting alone, so pushback never trips a breaker.
func (m *MirrorFS) record(i int, err error) {
	if resilient.Pushback(err) {
		m.pushbackNanos[i].Store(time.Now().Add(mirrorPushbackWindow).UnixNano())
		m.Stats.Pushbacks.Add(1)
		m.mPushbacks.Inc()
		return
	}
	if m.breakers[i].Record(err) {
		m.Stats.Trips.Add(1)
		m.mTrips.Inc()
	}
}

// pushingBack reports whether replica i is inside its pushback window.
func (m *MirrorFS) pushingBack(i int) bool {
	return time.Now().UnixNano() < m.pushbackNanos[i].Load()
}

// order partitions replica indices into those ready for traffic
// (breaker closed) and those demoted. Ready replicas inside a pushback
// window are soft-deprioritized: still eligible — a busy server beats
// no server — but moved behind their unburdened siblings, index order
// preserved within each class.
func (m *MirrorFS) order() (ready, demoted []int) {
	var busy []int
	for i, b := range m.breakers {
		switch {
		case !b.Ready():
			demoted = append(demoted, i)
		case m.pushingBack(i):
			busy = append(busy, i)
		default:
			ready = append(ready, i)
		}
	}
	return append(ready, busy...), demoted
}

// maybeProbe launches a background half-open probe of replica i if its
// breaker grants one. Regular traffic never waits on the probe; the
// goroutine reports back to the breaker when the backend answers (or
// its timeout expires).
func (m *MirrorFS) maybeProbe(i int) {
	if !m.breakers[i].TryProbe() {
		return
	}
	m.Stats.Probes.Add(1)
	m.mProbes.Inc()
	go func() {
		err := m.probe(m.replicas[i])
		if m.breakers[i].RecordProbe(err) {
			m.Stats.Readmits.Add(1)
			m.mReadmits.Inc()
		}
	}()
}

// mirrorRead runs op against the healthiest replica, failing over in
// health order on transport errors and optionally hedging. It returns
// the result and the replica index that produced it. discard releases
// the result of a losing hedge (a File that must be closed); nil when
// the result holds no resources. It is generic so that callers get
// typed results back — no `v.(vfs.File)` assertions that the capprobe
// discipline (and plain type safety) frowns on.
func mirrorRead[T any](m *MirrorFS, op func(fs vfs.FileSystem) (T, error), discard func(v T)) (T, int, error) {
	var zero T
	ready, demoted := m.order()
	for _, i := range demoted {
		m.maybeProbe(i)
	}
	if len(ready) == 0 {
		m.Stats.FastFails.Add(1)
		m.mFastFails.Inc()
		return zero, -1, vfs.ENOTCONN
	}
	if m.hedge > 0 && len(ready) > 1 {
		return hedgedRead(m, ready, op, discard)
	}
	var lastErr error = vfs.ENOTCONN
	for _, i := range ready {
		v, err := op(m.replicas[i])
		m.record(i, err)
		if err == nil || !unreachable(err) {
			return v, i, err
		}
		lastErr = err
	}
	return zero, -1, lastErr
}

// hedgedRead races op across the ready replicas: the first starts
// immediately, the next is hedged in after the hedge delay, and any
// transport failure immediately starts the next candidate. The first
// answer wins; straggler results are discarded in the background.
func hedgedRead[T any](m *MirrorFS, ready []int, op func(fs vfs.FileSystem) (T, error), discard func(v T)) (T, int, error) {
	var zero T
	type result struct {
		idx    int
		hedged bool
		v      T
		err    error
	}
	ch := make(chan result, len(ready))
	launch := func(pos int, hedged bool) {
		i := ready[pos]
		go func() {
			v, err := op(m.replicas[i])
			m.record(i, err)
			ch <- result{idx: i, hedged: hedged, v: v, err: err}
		}()
	}
	launched, pending := 1, 1
	launch(0, false)
	timer := time.NewTimer(m.hedge)
	defer timer.Stop()
	// reap drains straggler results in the background, releasing any
	// resources they carry and counting hedges that lost the race.
	reap := func(n int) {
		if n == 0 {
			return
		}
		go func() {
			for j := 0; j < n; j++ {
				r := <-ch
				if r.hedged {
					m.Stats.HedgeLosses.Add(1)
					m.mHedgeLosses.Inc()
				}
				if r.err == nil && discard != nil {
					discard(r.v)
				}
			}
		}()
	}
	var lastErr error = vfs.ENOTCONN
	for pending > 0 {
		select {
		case r := <-ch:
			pending--
			if r.err == nil || !unreachable(r.err) {
				if r.hedged && r.err == nil {
					m.Stats.HedgeWins.Add(1)
					m.mHedgeWins.Inc()
				}
				reap(pending)
				return r.v, r.idx, r.err
			}
			lastErr = r.err
			if launched < len(ready) {
				launch(launched, false) // failover, not a hedge
				launched++
				pending++
			}
		case <-timer.C:
			// A hedge is speculative extra load; never aim it at a
			// replica that is already shedding (failover on a real error
			// still may, below: a busy server beats no server).
			if launched < len(ready) && !m.pushingBack(ready[launched]) {
				m.Stats.Hedges.Add(1)
				m.mHedges.Inc()
				launch(launched, true)
				launched++
				pending++
			}
		}
	}
	return zero, -1, lastErr
}

// applyAll runs op on every ready replica. Unreachable replicas are
// skipped (and charged to their breakers); the first *semantic* error
// (EEXIST, EACCES, ...) is returned; if fewer replicas than the write
// quorum were reachable the last transport error is returned. With no
// quorum configured, one reachable replica suffices.
func (m *MirrorFS) applyAll(op func(i int, fs vfs.FileSystem) error) error {
	need := m.quorum
	if need < 1 {
		need = 1
	}
	ready, demoted := m.order()
	for _, i := range demoted {
		m.maybeProbe(i)
	}
	if len(ready) < need {
		m.Stats.FastFails.Add(1)
		m.mFastFails.Inc()
		return vfs.ENOTCONN
	}
	reached := 0
	var transportErr error
	for _, i := range ready {
		err := op(i, m.replicas[i])
		m.record(i, err)
		switch {
		case err == nil:
			reached++
		case unreachable(err):
			transportErr = err
		default:
			return err
		}
	}
	if reached < need {
		if transportErr == nil {
			transportErr = vfs.ENOTCONN
		}
		return transportErr
	}
	return nil
}

// Open opens the file on every reachable replica for writing, or on
// the healthiest reachable replica for read-only access. Read-only
// files transparently fail over to another replica when theirs dies
// mid-read.
func (m *MirrorFS) Open(path string, flags int, mode uint32) (vfs.File, error) {
	if flags&vfs.AccessModeMask == vfs.O_RDONLY && flags&(vfs.O_CREAT|vfs.O_TRUNC) == 0 {
		f, idx, err := mirrorRead(m, func(fs vfs.FileSystem) (vfs.File, error) {
			return fs.Open(path, flags, mode)
		}, func(f vfs.File) { f.Close() })
		if err != nil {
			return nil, err
		}
		return &mirrorFile{
			m:        m,
			files:    []vfs.File{f},
			idxs:     []int{idx},
			readOnly: true,
			path:     path,
			flags:    flags,
			mode:     mode,
		}, nil
	}
	var files []vfs.File
	var idxs []int
	err := m.applyAll(func(i int, fs vfs.FileSystem) error {
		f, e := fs.Open(path, flags, mode)
		if e == nil {
			files = append(files, f)
			idxs = append(idxs, i)
		}
		return e
	})
	if err != nil {
		for _, f := range files {
			f.Close()
		}
		// A failed exclusive create must not leave the file behind on
		// the replicas it did reach: the caller was told the create
		// lost, so a later winner (or retry) must find those replicas
		// empty. Only this open's own creations are undone — replicas
		// that answered EEXIST hold someone else's file.
		if flags&vfs.O_EXCL != 0 && flags&vfs.O_CREAT != 0 {
			for _, i := range idxs {
				m.replicas[i].Unlink(path)
			}
		}
		return nil, err
	}
	return &mirrorFile{m: m, files: files, idxs: idxs}, nil
}

// Stat reads from the healthiest reachable replica.
func (m *MirrorFS) Stat(path string) (vfs.FileInfo, error) {
	fi, _, err := mirrorRead(m, func(fs vfs.FileSystem) (vfs.FileInfo, error) {
		return fs.Stat(path)
	}, nil)
	if err != nil {
		return vfs.FileInfo{}, err
	}
	return fi, nil
}

// Unlink removes the file from every reachable replica.
func (m *MirrorFS) Unlink(path string) error {
	return m.applyAll(func(_ int, fs vfs.FileSystem) error { return fs.Unlink(path) })
}

// Rename renames on every reachable replica.
func (m *MirrorFS) Rename(oldPath, newPath string) error {
	return m.applyAll(func(_ int, fs vfs.FileSystem) error { return fs.Rename(oldPath, newPath) })
}

// Mkdir creates the directory on every reachable replica.
func (m *MirrorFS) Mkdir(path string, mode uint32) error {
	return m.applyAll(func(_ int, fs vfs.FileSystem) error { return fs.Mkdir(path, mode) })
}

// Rmdir removes the directory from every reachable replica.
func (m *MirrorFS) Rmdir(path string) error {
	return m.applyAll(func(_ int, fs vfs.FileSystem) error { return fs.Rmdir(path) })
}

// ReadDir lists from the healthiest reachable replica.
func (m *MirrorFS) ReadDir(path string) ([]vfs.DirEntry, error) {
	ents, _, err := mirrorRead(m, func(fs vfs.FileSystem) ([]vfs.DirEntry, error) {
		return fs.ReadDir(path)
	}, nil)
	if err != nil {
		return nil, err
	}
	return ents, nil
}

// Truncate truncates on every reachable replica.
func (m *MirrorFS) Truncate(path string, size int64) error {
	return m.applyAll(func(_ int, fs vfs.FileSystem) error { return fs.Truncate(path, size) })
}

// Chmod applies to every reachable replica.
func (m *MirrorFS) Chmod(path string, mode uint32) error {
	return m.applyAll(func(_ int, fs vfs.FileSystem) error { return fs.Chmod(path, mode) })
}

// StatFS reports the minimum capacity over reachable replicas: the
// mirror can store no more than its smallest member.
func (m *MirrorFS) StatFS() (vfs.FSInfo, error) {
	var out vfs.FSInfo
	found := false
	for i, r := range m.replicas {
		if !m.breakers[i].Ready() {
			m.maybeProbe(i)
			continue
		}
		info, err := r.StatFS()
		m.record(i, err)
		if err != nil {
			continue
		}
		if !found || info.FreeBytes < out.FreeBytes {
			out = info
		}
		found = true
	}
	if !found {
		return out, vfs.EIO
	}
	return out, nil
}

// Reconnect re-establishes every replica connection that supports it.
func (m *MirrorFS) Reconnect() error {
	var firstErr error
	for _, r := range m.replicas {
		if rc := vfs.Capabilities(r).Reconnector; rc != nil {
			if err := rc.Reconnect(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// Sync synchronizes a stale replica from a good one: every file and
// directory under root on src is copied to dst. It is the manual
// repair path for replicas that were down during writes.
func Sync(dst, src vfs.FileSystem, root string) error {
	ents, err := src.ReadDir(root)
	if err != nil {
		return err
	}
	for _, e := range ents {
		p := root + "/" + e.Name
		if root == "/" {
			p = "/" + e.Name
		}
		if e.IsDir {
			if err := dst.Mkdir(p, 0o755); err != nil && vfs.AsErrno(err) != vfs.EEXIST {
				return err
			}
			if err := Sync(dst, src, p); err != nil {
				return err
			}
			continue
		}
		if _, err := vfs.CopyFile(dst, p, src, p, 0); err != nil {
			return err
		}
	}
	return nil
}

// mirrorFile is an open file on one or more replicas: writes fan out,
// reads come from the first. A read-only mirrorFile remembers how it
// was opened so a mid-read transport failure can fail over: reopen on
// the next healthy replica and retry there.
type mirrorFile struct {
	m  *MirrorFS
	mu sync.Mutex

	files []vfs.File
	idxs  []int // replica index backing each file

	readOnly bool
	path     string
	flags    int
	mode     uint32
}

// readOp runs op against the current replica's file, failing over to
// other healthy replicas on transport errors. Read-mode operations
// serialize on mf.mu so failover can swap the backing file safely.
func (mf *mirrorFile) readOp(op func(f vfs.File) error) error {
	mf.mu.Lock()
	defer mf.mu.Unlock()
	err := op(mf.files[0])
	mf.m.record(mf.idxs[0], err)
	if err == nil || !unreachable(err) {
		return err
	}
	failed := mf.idxs[0]
	lastErr := err
	ready, demoted := mf.m.order()
	for _, i := range demoted {
		mf.m.maybeProbe(i)
	}
	for _, i := range ready {
		if i == failed {
			continue
		}
		g, err := mf.m.replicas[i].Open(mf.path, mf.flags, mf.mode)
		mf.m.record(i, err)
		if err != nil {
			if unreachable(err) {
				lastErr = err
				continue
			}
			return err
		}
		err = op(g)
		mf.m.record(i, err)
		if err == nil || !unreachable(err) {
			old := mf.files[0]
			mf.files[0], mf.idxs[0] = g, i
			old.Close()
			return err
		}
		g.Close()
		lastErr = err
	}
	return lastErr
}

func (mf *mirrorFile) Pread(p []byte, off int64) (int, error) {
	if !mf.readOnly {
		return mf.files[0].Pread(p, off)
	}
	var n int
	err := mf.readOp(func(f vfs.File) error {
		var e error
		n, e = f.Pread(p, off)
		return e
	})
	if err != nil {
		return 0, err
	}
	return n, nil
}

func (mf *mirrorFile) Pwrite(p []byte, off int64) (int, error) {
	mf.mu.Lock()
	defer mf.mu.Unlock()
	n := 0
	for i, f := range mf.files {
		m, err := f.Pwrite(p, off)
		mf.m.record(mf.idxs[i], err)
		if err != nil {
			return m, err
		}
		if i == 0 {
			n = m
		} else if m < n {
			n = m
		}
	}
	return n, nil
}

func (mf *mirrorFile) Fstat() (vfs.FileInfo, error) {
	if !mf.readOnly {
		return mf.files[0].Fstat()
	}
	var fi vfs.FileInfo
	err := mf.readOp(func(f vfs.File) error {
		var e error
		fi, e = f.Fstat()
		return e
	})
	if err != nil {
		return vfs.FileInfo{}, err
	}
	return fi, nil
}

func (mf *mirrorFile) Ftruncate(size int64) error {
	for _, f := range mf.files {
		if err := f.Ftruncate(size); err != nil {
			return err
		}
	}
	return nil
}

func (mf *mirrorFile) Sync() error {
	for _, f := range mf.files {
		if err := f.Sync(); err != nil {
			return err
		}
	}
	return nil
}

func (mf *mirrorFile) Close() error {
	var first error
	for _, f := range mf.files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
