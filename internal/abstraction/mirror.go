package abstraction

import (
	"sync"

	"tss/internal/vfs"
)

// MirrorFS transparently replicates a filesystem across N underlying
// filesystems — one of the §10 extensions ("One may imagine
// filesystems that transparently ... replicate ... data"), built as
// one more recursive abstraction: each replica can be a Chirp client,
// a DSFS, a local directory, or another mirror.
//
// Semantics, kept as simple as the paper's direct-access philosophy
// demands: modifying operations are applied to every *reachable*
// replica and succeed if they succeed everywhere reachable (with at
// least one reachable); reads are served by the first reachable
// replica. A replica that was down during writes is stale until
// re-synchronized — continuous repair is the job of GEMS-style
// auditing, not of the mirror itself.
type MirrorFS struct {
	replicas []vfs.FileSystem
}

var _ vfs.FileSystem = (*MirrorFS)(nil)

// NewMirror mirrors across the given filesystems.
func NewMirror(replicas ...vfs.FileSystem) (*MirrorFS, error) {
	if len(replicas) == 0 {
		return nil, vfs.EINVAL
	}
	return &MirrorFS{replicas: replicas}, nil
}

// unreachable reports whether err means the replica (not the request)
// failed, so the operation should carry on with the other replicas.
func unreachable(err error) bool {
	switch vfs.AsErrno(err) {
	case vfs.ENOTCONN, vfs.ETIMEDOUT, vfs.EIO:
		return true
	}
	return false
}

// applyAll runs op on every replica. Unreachable replicas are skipped;
// the first *semantic* error (EEXIST, EACCES, ...) is returned; if no
// replica was reachable the last transport error is returned.
func (m *MirrorFS) applyAll(op func(fs vfs.FileSystem) error) error {
	reached := false
	var transportErr error
	for _, r := range m.replicas {
		err := op(r)
		switch {
		case err == nil:
			reached = true
		case unreachable(err):
			transportErr = err
		default:
			return err
		}
	}
	if !reached {
		if transportErr == nil {
			transportErr = vfs.EIO
		}
		return transportErr
	}
	return nil
}

// firstReachable runs op on replicas in order until one answers.
func (m *MirrorFS) firstReachable(op func(fs vfs.FileSystem) error) error {
	var lastErr error = vfs.EIO
	for _, r := range m.replicas {
		err := op(r)
		if err == nil || !unreachable(err) {
			return err
		}
		lastErr = err
	}
	return lastErr
}

// Open opens the file on every reachable replica for writing, or on
// the first reachable replica for read-only access.
func (m *MirrorFS) Open(path string, flags int, mode uint32) (vfs.File, error) {
	if flags&vfs.AccessModeMask == vfs.O_RDONLY && flags&(vfs.O_CREAT|vfs.O_TRUNC) == 0 {
		var f vfs.File
		err := m.firstReachable(func(fs vfs.FileSystem) error {
			var e error
			f, e = fs.Open(path, flags, mode)
			return e
		})
		if err != nil {
			return nil, err
		}
		return &mirrorFile{files: []vfs.File{f}}, nil
	}
	var files []vfs.File
	err := m.applyAll(func(fs vfs.FileSystem) error {
		f, e := fs.Open(path, flags, mode)
		if e == nil {
			files = append(files, f)
		}
		return e
	})
	if err != nil {
		for _, f := range files {
			f.Close()
		}
		return nil, err
	}
	return &mirrorFile{files: files}, nil
}

// Stat reads from the first reachable replica.
func (m *MirrorFS) Stat(path string) (vfs.FileInfo, error) {
	var fi vfs.FileInfo
	err := m.firstReachable(func(fs vfs.FileSystem) error {
		var e error
		fi, e = fs.Stat(path)
		return e
	})
	return fi, err
}

// Unlink removes the file from every reachable replica.
func (m *MirrorFS) Unlink(path string) error {
	return m.applyAll(func(fs vfs.FileSystem) error { return fs.Unlink(path) })
}

// Rename renames on every reachable replica.
func (m *MirrorFS) Rename(oldPath, newPath string) error {
	return m.applyAll(func(fs vfs.FileSystem) error { return fs.Rename(oldPath, newPath) })
}

// Mkdir creates the directory on every reachable replica.
func (m *MirrorFS) Mkdir(path string, mode uint32) error {
	return m.applyAll(func(fs vfs.FileSystem) error { return fs.Mkdir(path, mode) })
}

// Rmdir removes the directory from every reachable replica.
func (m *MirrorFS) Rmdir(path string) error {
	return m.applyAll(func(fs vfs.FileSystem) error { return fs.Rmdir(path) })
}

// ReadDir lists from the first reachable replica.
func (m *MirrorFS) ReadDir(path string) ([]vfs.DirEntry, error) {
	var ents []vfs.DirEntry
	err := m.firstReachable(func(fs vfs.FileSystem) error {
		var e error
		ents, e = fs.ReadDir(path)
		return e
	})
	return ents, err
}

// Truncate truncates on every reachable replica.
func (m *MirrorFS) Truncate(path string, size int64) error {
	return m.applyAll(func(fs vfs.FileSystem) error { return fs.Truncate(path, size) })
}

// Chmod applies to every reachable replica.
func (m *MirrorFS) Chmod(path string, mode uint32) error {
	return m.applyAll(func(fs vfs.FileSystem) error { return fs.Chmod(path, mode) })
}

// StatFS reports the minimum capacity over reachable replicas: the
// mirror can store no more than its smallest member.
func (m *MirrorFS) StatFS() (vfs.FSInfo, error) {
	var out vfs.FSInfo
	found := false
	for _, r := range m.replicas {
		info, err := r.StatFS()
		if err != nil {
			continue
		}
		if !found || info.FreeBytes < out.FreeBytes {
			out = info
		}
		found = true
	}
	if !found {
		return out, vfs.EIO
	}
	return out, nil
}

// Reconnect re-establishes every replica connection that supports it.
func (m *MirrorFS) Reconnect() error {
	var firstErr error
	for _, r := range m.replicas {
		if rc, ok := r.(vfs.Reconnector); ok {
			if err := rc.Reconnect(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// Sync synchronizes a stale replica from a good one: every file and
// directory under root on src is copied to dst. It is the manual
// repair path for replicas that were down during writes.
func Sync(dst, src vfs.FileSystem, root string) error {
	ents, err := src.ReadDir(root)
	if err != nil {
		return err
	}
	for _, e := range ents {
		p := root + "/" + e.Name
		if root == "/" {
			p = "/" + e.Name
		}
		if e.IsDir {
			if err := dst.Mkdir(p, 0o755); err != nil && vfs.AsErrno(err) != vfs.EEXIST {
				return err
			}
			if err := Sync(dst, src, p); err != nil {
				return err
			}
			continue
		}
		if _, err := vfs.CopyFile(dst, p, src, p, 0); err != nil {
			return err
		}
	}
	return nil
}

// mirrorFile is an open file on one or more replicas: writes fan out,
// reads come from the first.
type mirrorFile struct {
	mu    sync.Mutex
	files []vfs.File
}

func (mf *mirrorFile) Pread(p []byte, off int64) (int, error) {
	return mf.files[0].Pread(p, off)
}

func (mf *mirrorFile) Pwrite(p []byte, off int64) (int, error) {
	mf.mu.Lock()
	defer mf.mu.Unlock()
	n := 0
	for i, f := range mf.files {
		m, err := f.Pwrite(p, off)
		if err != nil {
			return m, err
		}
		if i == 0 {
			n = m
		} else if m < n {
			n = m
		}
	}
	return n, nil
}

func (mf *mirrorFile) Fstat() (vfs.FileInfo, error) {
	return mf.files[0].Fstat()
}

func (mf *mirrorFile) Ftruncate(size int64) error {
	for _, f := range mf.files {
		if err := f.Ftruncate(size); err != nil {
			return err
		}
	}
	return nil
}

func (mf *mirrorFile) Sync() error {
	for _, f := range mf.files {
		if err := f.Sync(); err != nil {
			return err
		}
	}
	return nil
}

func (mf *mirrorFile) Close() error {
	var first error
	for _, f := range mf.files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
