package abstraction

import (
	"testing"

	"tss/internal/faultfs"
	"tss/internal/vfs"
)

// Exclusive-open (O_CREAT|O_EXCL) semantics under replica loss. The
// chaos engine's ExclusiveCreate invariant checker reuses this shape:
// at most one of two racing clients may win the create, no matter
// which replicas each can reach.

const exclFlags = vfs.O_WRONLY | vfs.O_CREAT | vfs.O_EXCL

// exclStack builds one client's view of shared backends: each backend
// wrapped in a per-client faultfs (its private reachability), mirrored
// with the given write quorum.
func exclStack(t *testing.T, backends []*vfs.LocalFS, quorum int) (*MirrorFS, []*faultfs.FS) {
	t.Helper()
	views := make([]*faultfs.FS, len(backends))
	replicas := make([]vfs.FileSystem, len(backends))
	for i, b := range backends {
		views[i] = faultfs.New(b)
		replicas[i] = views[i]
	}
	m, err := NewMirrorOptions(MirrorOptions{WriteQuorum: quorum}, replicas...)
	if err != nil {
		t.Fatal(err)
	}
	return m, views
}

func sharedBackends(t *testing.T, n int) []*vfs.LocalFS {
	t.Helper()
	out := make([]*vfs.LocalFS, n)
	for i := range out {
		out[i] = localFS(t)
	}
	return out
}

func TestExclusiveCreateLosesWhenFileExists(t *testing.T) {
	backends := sharedBackends(t, 3)
	m, _ := exclStack(t, backends, 0)
	f, err := m.Open("/lock", exclFlags, 0o644)
	if err != nil {
		t.Fatalf("first exclusive create: %v", err)
	}
	f.Close()
	if _, err := m.Open("/lock", exclFlags, 0o644); vfs.AsErrno(err) != vfs.EEXIST {
		t.Errorf("second exclusive create = %v, want EEXIST", err)
	}
}

func TestExclusiveCreateSurvivesReplicaLoss(t *testing.T) {
	backends := sharedBackends(t, 3)
	m, views := exclStack(t, backends, 0)
	views[2].SetDown(true) // one replica unreachable
	f, err := m.Open("/lock", exclFlags, 0o644)
	if err != nil {
		t.Fatalf("exclusive create with one replica down: %v", err)
	}
	f.Close()
	// The create landed on the reachable replicas only.
	if _, err := backends[0].Stat("/lock"); err != nil {
		t.Errorf("replica 0 missing the file: %v", err)
	}
	if _, err := backends[2].Stat("/lock"); vfs.AsErrno(err) != vfs.ENOENT {
		t.Errorf("down replica has the file: %v", err)
	}
	// Retry still excluded, even though replica 2 would say ENOENT.
	if _, err := m.Open("/lock", exclFlags, 0o644); vfs.AsErrno(err) != vfs.EEXIST {
		t.Errorf("retry = %v, want EEXIST", err)
	}
}

func TestQuorumRefusesMinorityCreate(t *testing.T) {
	backends := sharedBackends(t, 3)
	m, views := exclStack(t, backends, 2)
	views[0].SetDown(true)
	views[1].SetDown(true) // only a minority (replica 2) reachable
	if _, err := m.Open("/lock", exclFlags, 0o644); err == nil {
		t.Fatal("minority-side exclusive create succeeded")
	}
	// No residue: the failed create must not leave the file on the
	// replica it did reach.
	if _, err := backends[2].Stat("/lock"); vfs.AsErrno(err) != vfs.ENOENT {
		t.Errorf("failed create left residue on reachable replica: %v", err)
	}
}

func TestQuorumSplitBrainExclusiveCreate(t *testing.T) {
	backends := sharedBackends(t, 3)
	clientA, viewsA := exclStack(t, backends, 2)
	clientB, viewsB := exclStack(t, backends, 2)
	// Disjoint partition: A reaches {0,1}, B reaches {2}.
	viewsA[2].SetDown(true)
	viewsB[0].SetDown(true)
	viewsB[1].SetDown(true)

	fa, errA := clientA.Open("/lock", exclFlags, 0o644)
	_, errB := clientB.Open("/lock", exclFlags, 0o644)
	if errA != nil {
		t.Errorf("majority-side create failed: %v", errA)
	} else {
		fa.Close()
	}
	if errB == nil {
		t.Fatal("split brain: both sides won the exclusive create")
	}
	if _, err := backends[2].Stat("/lock"); vfs.AsErrno(err) != vfs.ENOENT {
		t.Errorf("loser left residue on its replica: %v", err)
	}

	// After the partition heals, the loser retrying sees EEXIST.
	viewsB[0].SetDown(false)
	viewsB[1].SetDown(false)
	if _, err := clientB.Open("/lock", exclFlags, 0o644); vfs.AsErrno(err) != vfs.EEXIST {
		t.Errorf("post-heal retry = %v, want EEXIST", err)
	}
}

func TestExclusiveCreateUndoOnSemanticLoss(t *testing.T) {
	backends := sharedBackends(t, 3)
	// Another client's create already landed on replica 2 only (it was
	// partitioned away before replicating further).
	if err := vfs.WriteFile(backends[2], "/lock", []byte("winner"), 0o644); err != nil {
		t.Fatal(err)
	}
	m, _ := exclStack(t, backends, 2)
	if _, err := m.Open("/lock", exclFlags, 0o644); vfs.AsErrno(err) != vfs.EEXIST {
		t.Fatalf("create over existing remote file = %v, want EEXIST", err)
	}
	// The loser created on replicas 0 and 1 before hitting EEXIST on 2;
	// those partial creates must be rolled back.
	for i := 0; i < 2; i++ {
		if _, err := backends[i].Stat("/lock"); vfs.AsErrno(err) != vfs.ENOENT {
			t.Errorf("replica %d: partial create not undone: %v", i, err)
		}
	}
	// The pre-existing copy is untouched.
	if data, err := vfs.ReadFile(backends[2], "/lock"); err != nil || string(data) != "winner" {
		t.Errorf("winner's copy disturbed: %q, %v", data, err)
	}
}
