package abstraction

import (
	"encoding/json"
	"fmt"
	"sync"

	"tss/internal/pathutil"
	"tss/internal/resilient"
	"tss/internal/vfs"
)

// StripedFS stripes each file's data across multiple servers in
// fixed-size blocks — the other §10 extension ("transparently stripe
// ... data") — so a single client reading one large file can draw on
// the aggregate bandwidth of every server at once. The directory tree
// lives on a metadata filesystem (local or on a Chirp server, exactly
// as with DPFS/DSFS); where the tree has a file, it has a descriptor
// naming the stripe layout.
//
// Layout: global stripe j lives on server j mod W at local offset
// (j div W) * S, where W is the stripe width and S the stripe size.
// Reads and writes fan out to the servers concurrently, one goroutine
// per server.
type StripedFS struct {
	meta       vfs.FileSystem
	servers    []DataServer
	byName     map[string]*DataServer
	stripeSize int64
	clientID   string
	retry      resilient.Policy
	seq        int64
	mu         sync.Mutex
}

var _ vfs.FileSystem = (*StripedFS)(nil)

// StripeOptions configures a striped filesystem.
type StripeOptions struct {
	// StripeSize is the block size in bytes (default 64 KiB).
	StripeSize int64
	// ClientID distinguishes this client in data file names.
	ClientID string
	// Retry is the shared policy driven against member-server
	// operations that fail with a retryable transport error. The zero
	// value retries nothing. Members that support vfs.Reconnector are
	// reconnected between attempts; exhaustion surfaces as ETIMEDOUT,
	// the same value the adapter's §6 recovery gives up with.
	Retry resilient.Policy
}

// retryMember drives op under policy p against a member filesystem:
// reconnect (when supported) between attempts, ETIMEDOUT on
// exhaustion. Handle-level recovery after a reconnect — reopening data
// files — remains the adapter's job; this policy cures the transient
// brown-outs where the handle itself stays valid.
func retryMember(p resilient.Policy, fs vfs.FileSystem, op func() error) error {
	if p.Attempts <= 0 {
		return op()
	}
	var prepare func() error
	if rc := vfs.Capabilities(fs).Reconnector; rc != nil {
		prepare = rc.Reconnect
	}
	err, exhausted := p.Do(op, prepare, resilient.Retryable)
	if exhausted {
		return vfs.ETIMEDOUT
	}
	return err
}

// stripeDesc is the JSON descriptor stored in place of each file.
type stripeDesc struct {
	Magic      string   `json:"magic"` // "tss-stripe"
	StripeSize int64    `json:"stripe_size"`
	Servers    []string `json:"servers"` // width = len(Servers), in stripe order
	Base       string   `json:"base"`    // data file path on every server
}

const stripeMagic = "tss-stripe"

// NewStriped assembles a striped filesystem.
func NewStriped(meta vfs.FileSystem, servers []DataServer, opts StripeOptions) (*StripedFS, error) {
	if len(servers) == 0 {
		return nil, fmt.Errorf("abstraction: striping needs at least one server")
	}
	if opts.StripeSize <= 0 {
		opts.StripeSize = 64 << 10
	}
	if opts.ClientID == "" {
		opts.ClientID = "client"
	}
	s := &StripedFS{
		meta:       meta,
		servers:    servers,
		byName:     make(map[string]*DataServer, len(servers)),
		stripeSize: opts.StripeSize,
		clientID:   opts.ClientID,
		retry:      opts.Retry,
	}
	for i := range servers {
		sv := &s.servers[i]
		if sv.Dir == "" {
			sv.Dir = "/"
		}
		n, err := pathutil.Norm(sv.Dir)
		if err != nil {
			return nil, vfs.EINVAL
		}
		sv.Dir = n
		if _, dup := s.byName[sv.Name]; dup {
			return nil, fmt.Errorf("abstraction: duplicate server name %q", sv.Name)
		}
		s.byName[sv.Name] = sv
		if err := vfs.MkdirAll(sv.FS, sv.Dir, 0o755); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// parseStripeDesc decodes raw bytes as a stripe descriptor, reporting
// ok only when the magic matches and the geometry is sane. Fsck uses
// it to recognize stripe files among stub files that share a metadata
// tree.
func parseStripeDesc(data []byte) (*stripeDesc, bool) {
	var d stripeDesc
	if err := json.Unmarshal(data, &d); err != nil || d.Magic != stripeMagic {
		return nil, false
	}
	if d.StripeSize <= 0 || len(d.Servers) == 0 || d.Base == "" {
		return nil, false
	}
	return &d, true
}

func (s *StripedFS) readDesc(path string) (*stripeDesc, error) {
	//lint:ignore copyapi a stripe descriptor is tiny one-round-trip metadata, not a transfer
	data, err := vfs.GetWholeFile(s.meta, path)
	if err != nil {
		return nil, err
	}
	d, ok := parseStripeDesc(data)
	if !ok {
		return nil, vfs.EIO
	}
	return d, nil
}

// Open opens or creates a striped file.
func (s *StripedFS) Open(path string, flags int, mode uint32) (vfs.File, error) {
	if flags&vfs.O_CREAT != 0 {
		return s.create(path, flags, mode)
	}
	d, err := s.readDesc(path)
	if err != nil {
		return nil, err
	}
	return s.openDesc(d, flags, mode, path)
}

func (s *StripedFS) openDesc(d *stripeDesc, flags int, mode uint32, name string) (vfs.File, error) {
	files := make([]vfs.File, len(d.Servers))
	fss := make([]vfs.FileSystem, len(d.Servers))
	dataFlags := flags &^ (vfs.O_CREAT | vfs.O_EXCL | vfs.O_TRUNC)
	// Truncating the logical file truncates every member.
	if flags&vfs.O_TRUNC != 0 {
		dataFlags |= vfs.O_TRUNC
	}
	for i, srvName := range d.Servers {
		srv := s.byName[srvName]
		if srv == nil {
			for _, f := range files {
				if f != nil {
					f.Close()
				}
			}
			return nil, vfs.EIO
		}
		var f vfs.File
		err := retryMember(s.retry, srv.FS, func() error {
			var e error
			f, e = srv.FS.Open(pathutil.Join(srv.Dir, d.Base), dataFlags, mode)
			return e
		})
		if err != nil {
			for _, g := range files {
				if g != nil {
					g.Close()
				}
			}
			return nil, err
		}
		files[i] = f
		fss[i] = srv.FS
	}
	return &stripedFile{
		files:      files,
		fss:        fss,
		retry:      s.retry,
		stripeSize: d.StripeSize,
		name:       pathutil.Base(name),
	}, nil
}

func (s *StripedFS) create(path string, flags int, mode uint32) (vfs.File, error) {
	s.mu.Lock()
	s.seq++
	base := fmt.Sprintf("%s.stripe.%d", s.clientID, s.seq)
	s.mu.Unlock()

	names := make([]string, len(s.servers))
	for i := range s.servers {
		names[i] = s.servers[i].Name
	}
	desc := &stripeDesc{Magic: stripeMagic, StripeSize: s.stripeSize, Servers: names, Base: base}
	body, err := json.Marshal(desc)
	if err != nil {
		return nil, err
	}
	// Same crash-safe ordering as the DSFS: descriptor first
	// (exclusively), then the data files.
	df, err := s.meta.Open(path, vfs.O_WRONLY|vfs.O_CREAT|vfs.O_EXCL, 0o644)
	switch vfs.AsErrno(err) {
	case vfs.EOK:
		if werr := vfs.WriteAll(df, body, 0); werr != nil {
			df.Close()
			s.meta.Unlink(path)
			return nil, werr
		}
		if cerr := df.Close(); cerr != nil {
			s.meta.Unlink(path)
			return nil, cerr
		}
	case vfs.EEXIST:
		if flags&vfs.O_EXCL != 0 {
			return nil, vfs.EEXIST
		}
		existing, rerr := s.readDesc(path)
		if rerr != nil {
			return nil, rerr
		}
		return s.openDesc(existing, flags, mode, path)
	default:
		return nil, err
	}
	files := make([]vfs.File, len(s.servers))
	fss := make([]vfs.FileSystem, len(s.servers))
	for i := range s.servers {
		srv := &s.servers[i]
		var f vfs.File
		err := retryMember(s.retry, srv.FS, func() error {
			var e error
			f, e = srv.FS.Open(pathutil.Join(srv.Dir, base), flags|vfs.O_CREAT|vfs.O_EXCL, mode)
			return e
		})
		if err != nil {
			for _, g := range files {
				if g != nil {
					g.Close()
				}
			}
			for j := 0; j < i; j++ {
				s.servers[j].FS.Unlink(pathutil.Join(s.servers[j].Dir, base))
			}
			s.meta.Unlink(path)
			return nil, err
		}
		files[i] = f
		fss[i] = srv.FS
	}
	return &stripedFile{files: files, fss: fss, retry: s.retry, stripeSize: s.stripeSize, name: pathutil.Base(path)}, nil
}

// Stat reconstructs the logical size from the member file sizes.
func (s *StripedFS) Stat(path string) (vfs.FileInfo, error) {
	d, err := s.readDesc(path)
	if vfs.AsErrno(err) == vfs.EISDIR {
		return s.meta.Stat(path)
	}
	if err != nil {
		// A descriptor that fails to parse may be a directory on
		// metadata stores that only report EISDIR at open time.
		if fi, serr := s.meta.Stat(path); serr == nil && fi.IsDir {
			return fi, nil
		}
		return vfs.FileInfo{}, err
	}
	var size int64
	var newest int64
	for k, srvName := range d.Servers {
		srv := s.byName[srvName]
		if srv == nil {
			return vfs.FileInfo{}, vfs.EIO
		}
		var fi vfs.FileInfo
		err := retryMember(s.retry, srv.FS, func() error {
			var e error
			fi, e = srv.FS.Stat(pathutil.Join(srv.Dir, d.Base))
			return e
		})
		if err != nil {
			return vfs.FileInfo{}, err
		}
		if end := logicalExtent(fi.Size, int64(k), int64(len(d.Servers)), d.StripeSize); end > size {
			size = end
		}
		if fi.MTime > newest {
			newest = fi.MTime
		}
	}
	return vfs.FileInfo{Name: pathutil.Base(path), Size: size, Mode: 0o644, MTime: newest}, nil
}

// logicalExtent maps member k's local length to the furthest logical
// byte it covers, given width w and stripe size ss.
func logicalExtent(local, k, w, ss int64) int64 {
	if local == 0 {
		return 0
	}
	full := local / ss
	rem := local % ss
	if rem > 0 {
		// The partial stripe is global stripe full*w+k.
		return (full*w+k)*ss + rem
	}
	// The last full stripe is global stripe (full-1)*w+k.
	return ((full-1)*w+k)*ss + ss
}

// Unlink removes the data files (each server) then the descriptor.
func (s *StripedFS) Unlink(path string) error {
	d, err := s.readDesc(path)
	if err != nil {
		return err
	}
	for _, srvName := range d.Servers {
		if srv := s.byName[srvName]; srv != nil {
			err := retryMember(s.retry, srv.FS, func() error {
				return srv.FS.Unlink(pathutil.Join(srv.Dir, d.Base))
			})
			if err != nil && vfs.AsErrno(err) != vfs.ENOENT {
				return err
			}
		}
	}
	return s.meta.Unlink(path)
}

// Rename is metadata-only.
func (s *StripedFS) Rename(oldPath, newPath string) error {
	return s.meta.Rename(oldPath, newPath)
}

// Mkdir is metadata-only.
func (s *StripedFS) Mkdir(path string, mode uint32) error { return s.meta.Mkdir(path, mode) }

// Rmdir is metadata-only.
func (s *StripedFS) Rmdir(path string) error { return s.meta.Rmdir(path) }

// ReadDir is metadata-only.
func (s *StripedFS) ReadDir(path string) ([]vfs.DirEntry, error) { return s.meta.ReadDir(path) }

// Truncate truncates every member to its share of the logical size.
func (s *StripedFS) Truncate(path string, size int64) error {
	d, err := s.readDesc(path)
	if err != nil {
		return err
	}
	w := int64(len(d.Servers))
	for k, srvName := range d.Servers {
		srv := s.byName[srvName]
		if srv == nil {
			return vfs.EIO
		}
		local := localLength(size, int64(k), w, d.StripeSize)
		err := retryMember(s.retry, srv.FS, func() error {
			return srv.FS.Truncate(pathutil.Join(srv.Dir, d.Base), local)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// localLength maps a logical size to member k's local length.
func localLength(size, k, w, ss int64) int64 {
	if size <= 0 {
		return 0
	}
	fullGlobal := size / ss // complete global stripes
	rem := size % ss
	// Member k holds global stripes k, k+w, k+2w, ...
	count := (fullGlobal - k + w - 1) / w // complete stripes on member k
	if count < 0 {
		count = 0
	}
	local := count * ss
	if rem > 0 && fullGlobal%w == k {
		local += rem
	}
	return local
}

// Chmod is metadata-only.
func (s *StripedFS) Chmod(path string, mode uint32) error { return s.meta.Chmod(path, mode) }

// StatFS aggregates capacity over the stripe members.
func (s *StripedFS) StatFS() (vfs.FSInfo, error) {
	var total vfs.FSInfo
	ok := false
	for i := range s.servers {
		info, err := s.servers[i].FS.StatFS()
		if err != nil {
			continue
		}
		total.TotalBytes += info.TotalBytes
		total.FreeBytes += info.FreeBytes
		ok = true
	}
	if !ok {
		return total, vfs.EIO
	}
	return total, nil
}

// stripedFile is an open striped file. I/O fans out to the member
// files concurrently, one goroutine per member.
type stripedFile struct {
	files      []vfs.File       // index = stripe order
	fss        []vfs.FileSystem // member filesystem backing each file
	retry      resilient.Policy
	stripeSize int64
	name       string
}

// retryOn drives op under the shared policy against member m's
// filesystem.
func (sf *stripedFile) retryOn(m int, op func() error) error {
	return retryMember(sf.retry, sf.fss[m], op)
}

// segment is one contiguous run within a member file.
type segment struct {
	member   int
	local    int64 // offset in the member file
	bufStart int64 // offset in the caller's buffer
	length   int64
}

// split decomposes a logical [off, off+n) range into member segments.
func (sf *stripedFile) split(off, n int64) []segment {
	w := int64(len(sf.files))
	ss := sf.stripeSize
	var segs []segment
	for n > 0 {
		stripe := off / ss
		intra := off % ss
		length := ss - intra
		if length > n {
			length = n
		}
		segs = append(segs, segment{
			member:   int(stripe % w),
			local:    (stripe/w)*ss + intra,
			bufStart: -1, // filled by caller
			length:   length,
		})
		off += length
		n -= length
	}
	return segs
}

// runSegs executes op for every segment, grouped by member and run
// concurrently across members.
func (sf *stripedFile) runSegs(segs []segment, op func(member int, seg segment) error) error {
	byMember := make([][]segment, len(sf.files))
	for _, seg := range segs {
		byMember[seg.member] = append(byMember[seg.member], seg)
	}
	var wg sync.WaitGroup
	errs := make([]error, len(sf.files))
	for m, list := range byMember {
		if len(list) == 0 {
			continue
		}
		wg.Add(1)
		go func(m int, list []segment) {
			defer wg.Done()
			for _, seg := range list {
				seg := seg
				if err := sf.retryOn(m, func() error { return op(m, seg) }); err != nil {
					errs[m] = err
					return
				}
			}
		}(m, list)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (sf *stripedFile) size() (int64, error) {
	w := int64(len(sf.files))
	var size int64
	for k, f := range sf.files {
		var fi vfs.FileInfo
		err := sf.retryOn(k, func() error {
			var e error
			fi, e = f.Fstat()
			return e
		})
		if err != nil {
			return 0, err
		}
		if end := logicalExtent(fi.Size, int64(k), w, sf.stripeSize); end > size {
			size = end
		}
	}
	return size, nil
}

func (sf *stripedFile) Pread(p []byte, off int64) (int, error) {
	size, err := sf.size()
	if err != nil {
		return 0, err
	}
	if off >= size {
		return 0, nil
	}
	n := int64(len(p))
	if off+n > size {
		n = size - off
	}
	segs := sf.split(off, n)
	var bufPos int64
	for i := range segs {
		segs[i].bufStart = bufPos
		bufPos += segs[i].length
	}
	err = sf.runSegs(segs, func(m int, seg segment) error {
		return vfs.ReadFull(sf.files[m], p[seg.bufStart:seg.bufStart+seg.length], seg.local)
	})
	if err != nil {
		return 0, err
	}
	return int(n), nil
}

func (sf *stripedFile) Pwrite(p []byte, off int64) (int, error) {
	segs := sf.split(off, int64(len(p)))
	var bufPos int64
	for i := range segs {
		segs[i].bufStart = bufPos
		bufPos += segs[i].length
	}
	err := sf.runSegs(segs, func(m int, seg segment) error {
		return vfs.WriteAll(sf.files[m], p[seg.bufStart:seg.bufStart+seg.length], seg.local)
	})
	if err != nil {
		return 0, err
	}
	return len(p), nil
}

func (sf *stripedFile) Fstat() (vfs.FileInfo, error) {
	size, err := sf.size()
	if err != nil {
		return vfs.FileInfo{}, err
	}
	return vfs.FileInfo{Name: sf.name, Size: size, Mode: 0o644}, nil
}

func (sf *stripedFile) Ftruncate(size int64) error {
	w := int64(len(sf.files))
	for k, f := range sf.files {
		f := f
		local := localLength(size, int64(k), w, sf.stripeSize)
		if err := sf.retryOn(k, func() error { return f.Ftruncate(local) }); err != nil {
			return err
		}
	}
	return nil
}

func (sf *stripedFile) Sync() error {
	for k, f := range sf.files {
		f := f
		if err := sf.retryOn(k, func() error { return f.Sync() }); err != nil {
			return err
		}
	}
	return nil
}

func (sf *stripedFile) Close() error {
	var first error
	for _, f := range sf.files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
