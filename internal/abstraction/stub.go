package abstraction

import (
	"fmt"
	"strings"

	"tss/internal/chirp/proto"
	"tss/internal/vfs"
)

// A stub file is the metadata-side representation of a distributed
// file: a tiny file in the directory tree recording which server holds
// the data and under what name (§5's DPFS diagram). Stubs are what
// keep name-only operations — rename, mkdir, readdir — local to the
// metadata tree.

// stubMagic is the first token of every stub file.
const stubMagic = "tss-stub"

// stubVersion is bumped if the format ever changes.
const stubVersion = "v1"

// Stub records the location of a distributed file's data.
type Stub struct {
	Server string // DataServer.Name
	Path   string // data file path on that server
}

// encodeStub renders the one-line stub file body.
func encodeStub(s Stub) []byte {
	return []byte(fmt.Sprintf("%s %s %s %s\n",
		stubMagic, stubVersion, proto.Escape(s.Server), proto.Escape(s.Path)))
}

// decodeStub parses a stub file body.
func decodeStub(data []byte) (Stub, error) {
	fields := strings.Fields(strings.TrimSpace(string(data)))
	if len(fields) != 4 || fields[0] != stubMagic {
		return Stub{}, fmt.Errorf("abstraction: not a stub file")
	}
	if fields[1] != stubVersion {
		return Stub{}, fmt.Errorf("abstraction: unsupported stub version %q", fields[1])
	}
	server, err := proto.Unescape(fields[2])
	if err != nil {
		return Stub{}, err
	}
	path, err := proto.Unescape(fields[3])
	if err != nil {
		return Stub{}, err
	}
	return Stub{Server: server, Path: path}, nil
}

// readStub loads and parses the stub at path on the metadata
// filesystem. A directory yields EISDIR; a missing file ENOENT.
//
// When the metadata filesystem offers the getfile fast path (a Chirp
// server does), the stub costs exactly one round trip — which is why a
// DSFS metadata operation costs twice a CFS operation (stub + data),
// not more (Figure 4).
func readStub(meta vfs.FileSystem, path string) (Stub, error) {
	//lint:ignore copyapi a stub is tiny one-round-trip metadata (Figure 4), not a transfer
	data, err := vfs.GetWholeFile(meta, path)
	if err != nil {
		if vfs.AsErrno(err) == vfs.EISDIR {
			return Stub{}, vfs.EISDIR
		}
		return Stub{}, err
	}
	s, err := decodeStub(data)
	if err != nil {
		// Not a stub: most likely a directory on metadata stores that
		// report EISDIR only at read time, or foreign data.
		if fi, serr := meta.Stat(path); serr == nil && fi.IsDir {
			return Stub{}, vfs.EISDIR
		}
		return Stub{}, vfs.EIO
	}
	return s, nil
}
