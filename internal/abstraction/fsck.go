package abstraction

import (
	"fmt"

	"tss/internal/pathutil"
	"tss/internal/vfs"
)

// Fsck implements the recovery story of §5: because each abstraction
// stores its data in a distinguishable directory on every server, the
// filesystem can be checked and repaired — dangling stubs (stub entry
// whose data file is gone, the benign crash residue) detected and
// optionally removed, and orphaned data files (data without a stub,
// which only appears after external interference) detected and
// optionally reclaimed.

// FsckReport summarizes one check of a distributed filesystem.
type FsckReport struct {
	FilesChecked  int
	DirsChecked   int
	Stripes       int      // stripe descriptors recognized and validated
	DanglingStubs []string // logical paths whose data file is missing
	Unreachable   []string // logical paths whose server did not answer
	OrphanedData  []string // "server:path" data files with no stub
	BadStubs      []string // unparseable stub files
	// StripeDamaged lists stripe files whose members are missing or
	// whose local lengths disagree with the reconstructed logical size
	// ("path: reason").
	StripeDamaged []string
	// StripeDigests records the per-member digest of every stripe file,
	// in stripe order ("" for members that could not be digested).
	// Members hold different slices of the data, so the digests are not
	// compared against each other — they give an operator a fingerprint
	// to compare across fsck runs or against a known-good record.
	StripeDigests map[string][]string
}

// FsckOptions controls repair behaviour.
type FsckOptions struct {
	// RemoveDangling unlinks stub entries whose data is gone.
	RemoveDangling bool
	// RemoveOrphans unlinks data files no stub references. Only safe
	// when no other client is concurrently creating files (creation
	// writes the stub first, so a racing create looks dangling, not
	// orphaned — but a to-be-written data file could look orphaned).
	RemoveOrphans bool
}

// Fsck walks the metadata tree and every server's storage directory,
// cross-checking stubs against data files.
func (d *Dist) Fsck(opts FsckOptions) (*FsckReport, error) {
	report := &FsckReport{StripeDigests: make(map[string][]string)}
	referenced := make(map[string]bool) // "server\x00path" -> true

	var walk func(dir string) error
	walk = func(dir string) error {
		report.DirsChecked++
		ents, err := d.meta.ReadDir(dir)
		if err != nil {
			return fmt.Errorf("fsck: listing %s: %w", dir, err)
		}
		for _, e := range ents {
			p := pathutil.Join(dir, e.Name)
			if e.IsDir {
				if err := walk(p); err != nil {
					return err
				}
				continue
			}
			report.FilesChecked++
			stub, err := readStub(d.meta, p)
			if err != nil {
				// Not a stub — but a metadata tree can also hold stripe
				// descriptors (stripe.go); recognize and validate those
				// before declaring the file damaged.
				//lint:ignore copyapi stripe descriptors are tiny one-round-trip metadata, not transfers
				if data, rerr := vfs.GetWholeFile(d.meta, p); rerr == nil {
					if desc, ok := parseStripeDesc(data); ok {
						d.fsckStripe(p, desc, report, referenced)
						continue
					}
				}
				// An empty or partial stub is the residue of a crash
				// between the exclusive create and the body write; no
				// data file can exist for it (data is created only
				// after the stub write completes), so removal is as
				// safe as removing a dangling stub.
				report.BadStubs = append(report.BadStubs, p)
				if opts.RemoveDangling {
					if err := d.meta.Unlink(p); err != nil {
						return fmt.Errorf("fsck: removing bad stub %s: %w", p, err)
					}
				}
				continue
			}
			referenced[stub.Server+"\x00"+stub.Path] = true
			srv := d.server(stub.Server)
			if srv == nil {
				report.Unreachable = append(report.Unreachable, p)
				continue
			}
			_, err = srv.FS.Stat(stub.Path)
			switch vfs.AsErrno(err) {
			case vfs.EOK:
			case vfs.ENOENT:
				report.DanglingStubs = append(report.DanglingStubs, p)
				if opts.RemoveDangling {
					if err := d.meta.Unlink(p); err != nil {
						return fmt.Errorf("fsck: removing dangling %s: %w", p, err)
					}
				}
			default:
				report.Unreachable = append(report.Unreachable, p)
			}
		}
		return nil
	}
	if err := walk("/"); err != nil {
		return report, err
	}

	// Scan every server's storage directory for unreferenced data.
	for i := range d.servers {
		srv := &d.servers[i]
		ents, err := srv.FS.ReadDir(srv.Dir)
		if err != nil {
			continue // server down: nothing to reclaim now
		}
		for _, e := range ents {
			if e.IsDir {
				continue
			}
			dataPath := pathutil.Join(srv.Dir, e.Name)
			if referenced[srv.Name+"\x00"+dataPath] {
				continue
			}
			report.OrphanedData = append(report.OrphanedData, srv.Name+":"+dataPath)
			if opts.RemoveOrphans {
				if err := srv.FS.Unlink(dataPath); err != nil && vfs.AsErrno(err) != vfs.ENOENT {
					return report, fmt.Errorf("fsck: reclaiming %s on %s: %w", dataPath, srv.Name, err)
				}
			}
		}
	}
	return report, nil
}

// fsckStripe validates one stripe descriptor: every member data file
// must exist, the member lengths must agree with the logical size
// reconstructed from them, and each member is digested so the report
// carries a per-member fingerprint of the data.
func (d *Dist) fsckStripe(p string, desc *stripeDesc, report *FsckReport, referenced map[string]bool) {
	report.Stripes++
	w := int64(len(desc.Servers))
	sizes := make([]int64, len(desc.Servers))
	digests := make([]string, len(desc.Servers))
	var damage string
	unreach := false
	var logical int64
	for k, name := range desc.Servers {
		srv := d.server(name)
		if srv == nil {
			if damage == "" {
				damage = fmt.Sprintf("member %d: unknown server %q", k, name)
			}
			continue
		}
		dataPath := pathutil.Join(srv.Dir, desc.Base)
		referenced[srv.Name+"\x00"+dataPath] = true
		fi, err := srv.FS.Stat(dataPath)
		switch vfs.AsErrno(err) {
		case vfs.EOK:
		case vfs.ENOENT:
			if damage == "" {
				damage = fmt.Sprintf("member %d: data file missing on %s", k, name)
			}
			continue
		default:
			unreach = true
			continue
		}
		sizes[k] = fi.Size
		if end := logicalExtent(fi.Size, int64(k), w, desc.StripeSize); end > logical {
			logical = end
		}
		if sum, err := vfs.ChecksumFile(srv.FS, dataPath, vfs.DefaultAlgo); err == nil {
			digests[k] = sum
		}
	}
	if damage == "" && !unreach {
		for k := range desc.Servers {
			if want := localLength(logical, int64(k), w, desc.StripeSize); sizes[k] != want {
				damage = fmt.Sprintf("member %d: local length %d, want %d for logical size %d",
					k, sizes[k], want, logical)
				break
			}
		}
	}
	report.StripeDigests[p] = digests
	if unreach && damage == "" {
		report.Unreachable = append(report.Unreachable, p)
	}
	if damage != "" {
		report.StripeDamaged = append(report.StripeDamaged, p+": "+damage)
	}
}

// Clean reports whether the check found nothing wrong.
func (r *FsckReport) Clean() bool {
	return len(r.DanglingStubs) == 0 && len(r.OrphanedData) == 0 &&
		len(r.BadStubs) == 0 && len(r.Unreachable) == 0 &&
		len(r.StripeDamaged) == 0
}

// String renders a short summary.
func (r *FsckReport) String() string {
	return fmt.Sprintf("fsck: %d files, %d dirs, %d stripes; dangling=%d orphaned=%d bad=%d unreachable=%d stripe_damaged=%d",
		r.FilesChecked, r.DirsChecked, r.Stripes, len(r.DanglingStubs), len(r.OrphanedData),
		len(r.BadStubs), len(r.Unreachable), len(r.StripeDamaged))
}
