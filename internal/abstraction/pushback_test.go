package abstraction

import (
	"testing"
	"time"

	"tss/internal/resilient"
	"tss/internal/vfs"
)

// EAGAIN from a replica is overload pushback, not failure: it must not
// charge the breaker, and while the pushback window is open the replica
// is served last so retries land on an unburdened sibling.
func TestMirrorPushbackDeprioritizes(t *testing.T) {
	m, a, _ := resilientMirror(t, MirrorOptions{})
	if err := vfs.WriteFile(m, "/f", []byte("replicated"), 0o644); err != nil {
		t.Fatal(err)
	}
	a.SetError(vfs.EAGAIN)
	a.FailNext(1)
	// The shed request surfaces as EAGAIN — the retry policy above owns
	// the backoff — rather than being masked by an instant failover.
	if _, err := m.Stat("/f"); vfs.AsErrno(err) != vfs.EAGAIN {
		t.Fatalf("stat against shedding replica = %v, want EAGAIN", err)
	}
	if got := m.Stats.Pushbacks.Load(); got != 1 {
		t.Errorf("pushbacks = %d, want 1", got)
	}
	if st := m.Health()[0]; st.State != resilient.Closed {
		t.Errorf("pushback moved breaker to %v, want closed", st.State)
	}
	if got := m.Stats.Trips.Load(); got != 0 {
		t.Errorf("pushback tripped %d breakers", got)
	}
	// Replica 0 is soft-deprioritized: still eligible, but last.
	ready, demoted := m.order()
	if len(demoted) != 0 || len(ready) != 2 || ready[0] != 1 || ready[1] != 0 {
		t.Fatalf("order during pushback = ready %v demoted %v, want ready [1 0]", ready, demoted)
	}
	// Reads inside the window are served entirely by the sibling.
	baseA := a.Calls()
	for i := 0; i < 5; i++ {
		if fi, err := m.Stat("/f"); err != nil || fi.Size != int64(len("replicated")) {
			t.Fatalf("read %d during pushback: %+v, %v", i, fi, err)
		}
	}
	if extra := a.Calls() - baseA; extra != 0 {
		t.Errorf("pushing-back replica saw %d calls inside its window", extra)
	}
	// When the window lapses the replica rejoins the front of rotation.
	m.pushbackNanos[0].Store(time.Now().Add(-time.Millisecond).UnixNano())
	ready, _ = m.order()
	if len(ready) != 2 || ready[0] != 0 {
		t.Errorf("order after window = %v, want [0 1]", ready)
	}
}
