package abstraction

import (
	"tss/internal/vfs"
)

// Lease delegation for the mirror. Versions are drawn from a per-server
// counter, so numbers from different replicas are incomparable: a cache
// that renewed against replica A and then against replica B could see a
// coincidentally equal version and revalidate stale data. The mirror
// therefore pins all lease traffic to one stable replica — the
// lowest-indexed one advertising vfs.Leaser — instead of the
// healthiest-ordered failover used for data reads. If the pinned
// replica is demoted the lease call fails and the caching layer above
// degrades to TTL-only expiry, which is safe; it never silently
// switches version domains.

var _ vfs.Leaser = (*MirrorFS)(nil)

// leaser returns the pinned lease replica's index and capability, or
// (-1, nil) when no replica leases.
func (m *MirrorFS) leaser() (int, vfs.Leaser) {
	for i, r := range m.replicas {
		if l := vfs.Capabilities(r).Leaser; l != nil {
			return i, l
		}
	}
	return -1, nil
}

// Lease acquires a read lease from the pinned replica (vfs.Leaser).
func (m *MirrorFS) Lease(path string) (vfs.Lease, error) {
	i, l := m.leaser()
	if l == nil {
		return vfs.Lease{}, vfs.EINVAL
	}
	if !m.breakers[i].Ready() {
		m.maybeProbe(i)
		return vfs.Lease{}, vfs.ENOTCONN
	}
	lease, err := l.Lease(path)
	m.record(i, err)
	return lease, err
}

// LeaseBreak releases a lease on the pinned replica (vfs.Leaser).
func (m *MirrorFS) LeaseBreak(id int64) error {
	i, l := m.leaser()
	if l == nil {
		return vfs.EINVAL
	}
	if !m.breakers[i].Ready() {
		m.maybeProbe(i)
		return vfs.ENOTCONN
	}
	err := l.LeaseBreak(id)
	m.record(i, err)
	return err
}
