package abstraction

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"tss/internal/vfs"
)

// ---- MirrorFS ----

func newMirror(t *testing.T, n int) (*MirrorFS, []*vfs.LocalFS) {
	t.Helper()
	var replicas []*vfs.LocalFS
	var fss []vfs.FileSystem
	for i := 0; i < n; i++ {
		l := localFS(t)
		replicas = append(replicas, l)
		fss = append(fss, l)
	}
	m, err := NewMirror(fss...)
	if err != nil {
		t.Fatal(err)
	}
	return m, replicas
}

func TestMirrorWritesEverywhere(t *testing.T) {
	m, replicas := newMirror(t, 3)
	if err := vfs.WriteFile(m, "/f", []byte("copied thrice"), 0o644); err != nil {
		t.Fatal(err)
	}
	for i, r := range replicas {
		data, err := vfs.ReadFile(r, "/f")
		if err != nil || string(data) != "copied thrice" {
			t.Errorf("replica %d: %q, %v", i, data, err)
		}
	}
	if err := m.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	for i, r := range replicas {
		if fi, err := r.Stat("/d"); err != nil || !fi.IsDir {
			t.Errorf("replica %d missing dir: %v", i, err)
		}
	}
	if err := m.Unlink("/f"); err != nil {
		t.Fatal(err)
	}
	for i, r := range replicas {
		if vfs.Exists(r, "/f") {
			t.Errorf("replica %d still has the file", i)
		}
	}
}

// flakyFS wraps a filesystem and can be switched "down", failing every
// operation with ENOTCONN — the test double for a withdrawn server.
type flakyFS struct {
	vfs.FileSystem
	down bool
}

func (f *flakyFS) gate() error {
	if f.down {
		return vfs.ENOTCONN
	}
	return nil
}

func (f *flakyFS) Open(path string, flags int, mode uint32) (vfs.File, error) {
	if err := f.gate(); err != nil {
		return nil, err
	}
	return f.FileSystem.Open(path, flags, mode)
}

func (f *flakyFS) Stat(path string) (vfs.FileInfo, error) {
	if err := f.gate(); err != nil {
		return vfs.FileInfo{}, err
	}
	return f.FileSystem.Stat(path)
}

func (f *flakyFS) Unlink(path string) error {
	if err := f.gate(); err != nil {
		return err
	}
	return f.FileSystem.Unlink(path)
}

func (f *flakyFS) Mkdir(path string, mode uint32) error {
	if err := f.gate(); err != nil {
		return err
	}
	return f.FileSystem.Mkdir(path, mode)
}

func (f *flakyFS) ReadDir(path string) ([]vfs.DirEntry, error) {
	if err := f.gate(); err != nil {
		return nil, err
	}
	return f.FileSystem.ReadDir(path)
}

func TestMirrorSurvivesDownReplica(t *testing.T) {
	a, b := localFS(t), localFS(t)
	flaky := &flakyFS{FileSystem: a}
	m, err := NewMirror(flaky, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(m, "/before", []byte("both"), 0o644); err != nil {
		t.Fatal(err)
	}
	flaky.down = true
	// Writes continue on the survivor.
	if err := vfs.WriteFile(m, "/during", []byte("one"), 0o644); err != nil {
		t.Fatalf("write with one replica down: %v", err)
	}
	// Reads fall through to the survivor.
	data, err := vfs.ReadFile(m, "/before")
	if err != nil || string(data) != "both" {
		t.Fatalf("read with first replica down: %q, %v", data, err)
	}
	if _, err := m.Stat("/during"); err != nil {
		t.Errorf("stat with first replica down: %v", err)
	}
	// The stale replica is missing the new file; Sync repairs it.
	flaky.down = false
	if vfs.Exists(a, "/during") {
		t.Fatal("down replica mysteriously has the file")
	}
	if err := Sync(a, b, "/"); err != nil {
		t.Fatal(err)
	}
	data, err = vfs.ReadFile(a, "/during")
	if err != nil || string(data) != "one" {
		t.Errorf("after sync: %q, %v", data, err)
	}
}

func TestMirrorSemanticErrorsPropagate(t *testing.T) {
	m, _ := newMirror(t, 2)
	if err := vfs.WriteFile(m, "/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	// EEXIST is a semantic error, not a transport one: it must surface.
	if _, err := m.Open("/f", vfs.O_WRONLY|vfs.O_CREAT|vfs.O_EXCL, 0o644); vfs.AsErrno(err) != vfs.EEXIST {
		t.Errorf("exclusive create on mirror = %v, want EEXIST", err)
	}
	if _, err := vfs.ReadFile(m, "/missing"); vfs.AsErrno(err) != vfs.ENOENT {
		t.Errorf("read missing = %v, want ENOENT", err)
	}
}

func TestMirrorAllDownFails(t *testing.T) {
	a := &flakyFS{FileSystem: localFS(t), down: true}
	b := &flakyFS{FileSystem: localFS(t), down: true}
	m, err := NewMirror(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(m, "/f", []byte("x"), 0o644); err == nil {
		t.Error("write with all replicas down succeeded")
	}
}

// ---- StripedFS ----

func newStriped(t *testing.T, width int, stripeSize int64) (*StripedFS, []DataServer) {
	t.Helper()
	var servers []DataServer
	for i := 0; i < width; i++ {
		servers = append(servers, DataServer{
			Name: fmt.Sprintf("s%d", i),
			FS:   localFS(t),
			Dir:  "/stripes",
		})
	}
	s, err := NewStriped(localFS(t), servers, StripeOptions{StripeSize: stripeSize, ClientID: "t"})
	if err != nil {
		t.Fatal(err)
	}
	return s, servers
}

func TestStripedRoundTrip(t *testing.T) {
	s, servers := newStriped(t, 3, 1024)
	payload := make([]byte, 10*1024+137) // uneven tail
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	if err := vfs.WriteFile(s, "/big", payload, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := vfs.ReadFile(s, "/big")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: %d vs %d bytes, %v", len(got), len(payload), err)
	}
	fi, err := s.Stat("/big")
	if err != nil || fi.Size != int64(len(payload)) {
		t.Fatalf("stat = %+v, %v", fi, err)
	}
	// The data is genuinely spread: each server holds a share, and no
	// single server holds everything.
	var perServer []int64
	var total int64
	for _, srv := range servers {
		ents, err := srv.FS.ReadDir("/stripes")
		if err != nil || len(ents) != 1 {
			t.Fatalf("server listing: %v, %v", ents, err)
		}
		fi, _ := srv.FS.Stat("/stripes/" + ents[0].Name)
		perServer = append(perServer, fi.Size)
		total += fi.Size
	}
	if total != int64(len(payload)) {
		t.Errorf("member sizes sum to %d, want %d (%v)", total, len(payload), perServer)
	}
	for i, sz := range perServer {
		if sz == int64(len(payload)) || sz == 0 {
			t.Errorf("server %d holds %d bytes: not striped", i, sz)
		}
	}
}

// Property: random offset writes then reads through the stripes match
// a reference byte slice.
func TestStripedRandomAccessProperty(t *testing.T) {
	s, _ := newStriped(t, 4, 256)
	f, err := s.Open("/rand", vfs.O_RDWR|vfs.O_CREAT, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	const fileSize = 8192
	ref := make([]byte, fileSize)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		off := rng.Intn(fileSize - 1)
		length := rng.Intn(fileSize-off) + 1
		chunk := make([]byte, length)
		rng.Read(chunk)
		if _, err := f.Pwrite(chunk, int64(off)); err != nil {
			t.Fatalf("pwrite(%d,%d): %v", off, length, err)
		}
		copy(ref[off:], chunk)

		roff := rng.Intn(fileSize)
		rlen := rng.Intn(fileSize-roff) + 1
		buf := make([]byte, rlen)
		n, err := f.Pread(buf, int64(roff))
		if err != nil {
			t.Fatalf("pread(%d,%d): %v", roff, rlen, err)
		}
		// Reads beyond the written extent may be short; compare what
		// was returned against the reference.
		if !bytes.Equal(buf[:n], ref[roff:roff+n]) {
			t.Fatalf("iteration %d: read mismatch at %d+%d", i, roff, rlen)
		}
	}
}

func TestStripedExtentMath(t *testing.T) {
	// logicalExtent and localLength must be inverses over random
	// logical sizes.
	f := func(size uint32, w8, ss8 uint8) bool {
		w := int64(w8%7) + 1
		ss := int64(ss8%200) + 1
		logical := int64(size % (1 << 20))
		var reconstructed int64
		for k := int64(0); k < w; k++ {
			local := localLength(logical, k, w, ss)
			if end := logicalExtent(local, k, w, ss); end > reconstructed {
				reconstructed = end
			}
		}
		return reconstructed == logical
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestStripedTruncate(t *testing.T) {
	s, _ := newStriped(t, 3, 512)
	payload := make([]byte, 5000)
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := vfs.WriteFile(s, "/f", payload, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Truncate("/f", 1234); err != nil {
		t.Fatal(err)
	}
	got, err := vfs.ReadFile(s, "/f")
	if err != nil || !bytes.Equal(got, payload[:1234]) {
		t.Fatalf("after truncate: %d bytes, %v", len(got), err)
	}
	fi, _ := s.Stat("/f")
	if fi.Size != 1234 {
		t.Errorf("stat after truncate = %d", fi.Size)
	}
}

func TestStripedCreateSemantics(t *testing.T) {
	s, _ := newStriped(t, 2, 128)
	f, err := s.Open("/x", vfs.O_WRONLY|vfs.O_CREAT|vfs.O_EXCL, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := s.Open("/x", vfs.O_WRONLY|vfs.O_CREAT|vfs.O_EXCL, 0o644); vfs.AsErrno(err) != vfs.EEXIST {
		t.Errorf("second exclusive create = %v", err)
	}
	// Reopen with O_TRUNC empties the file.
	if err := vfs.WriteFile(s, "/x", []byte("abcdef"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err = s.Open("/x", vfs.O_WRONLY|vfs.O_CREAT|vfs.O_TRUNC, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	fi, _ := s.Stat("/x")
	if fi.Size != 0 {
		t.Errorf("size after O_TRUNC reopen = %d", fi.Size)
	}
}

func TestStripedUnlinkRemovesMembers(t *testing.T) {
	s, servers := newStriped(t, 3, 256)
	if err := vfs.WriteFile(s, "/f", make([]byte, 2048), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Unlink("/f"); err != nil {
		t.Fatal(err)
	}
	for i, srv := range servers {
		ents, _ := srv.FS.ReadDir("/stripes")
		if len(ents) != 0 {
			t.Errorf("server %d still holds %d member files", i, len(ents))
		}
	}
	if _, err := s.Stat("/f"); vfs.AsErrno(err) != vfs.ENOENT {
		t.Errorf("stat after unlink = %v", err)
	}
}

func TestStripedDirectoriesAreMetadataOnly(t *testing.T) {
	s, _ := newStriped(t, 2, 128)
	if err := s.Mkdir("/sub", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(s, "/sub/f", []byte("inside"), 0o644); err != nil {
		t.Fatal(err)
	}
	ents, err := s.ReadDir("/sub")
	if err != nil || len(ents) != 1 {
		t.Fatalf("readdir = %+v, %v", ents, err)
	}
	if err := s.Rename("/sub", "/moved"); err != nil {
		t.Fatal(err)
	}
	data, err := vfs.ReadFile(s, "/moved/f")
	if err != nil || string(data) != "inside" {
		t.Fatalf("after dir rename: %q, %v", data, err)
	}
	fi, err := s.Stat("/moved")
	if err != nil || !fi.IsDir {
		t.Fatalf("stat dir = %+v, %v", fi, err)
	}
}

// Striping composes with the recursive interface: a striped file
// system over mirrors (RAID-10-ish), just by plugging filesystems
// together.
func TestStripedOverMirrors(t *testing.T) {
	var servers []DataServer
	for i := 0; i < 2; i++ {
		m, err := NewMirror(localFS(t), localFS(t))
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, DataServer{Name: fmt.Sprintf("m%d", i), FS: m, Dir: "/d"})
	}
	s, err := NewStriped(localFS(t), servers, StripeOptions{StripeSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i * 3)
	}
	if err := vfs.WriteFile(s, "/raid10", payload, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := vfs.ReadFile(s, "/raid10")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("striped-over-mirrored round trip failed: %v", err)
	}
}
