package abstraction

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tss/internal/pathutil"
	"tss/internal/vfs"
)

// Dist is the shared engine of the distributed filesystems. The
// directory tree (with stub files standing in for file data) lives on
// the metadata filesystem; file data lives on the data servers. With a
// local metadata filesystem this is the DPFS of §5; with a metadata
// filesystem on a Chirp server it is the DSFS — same code, different
// instantiation of the recursive interface.
type Dist struct {
	meta     vfs.FileSystem
	servers  []DataServer
	byName   map[string]*DataServer
	clientID string

	seq atomic.Int64

	mu   sync.Mutex
	next int // round-robin placement cursor
}

var (
	_ vfs.FileSystem = (*Dist)(nil)
)

// Options configures a distributed filesystem.
type Options struct {
	// ClientID distinguishes this client in generated data file names
	// (the paper uses the client IP address). Default "client".
	ClientID string
}

// New assembles a distributed filesystem from a metadata filesystem
// and one or more data servers, creating each server's storage
// directory as needed (the "create new storage directories on each
// server" step of §5).
func New(meta vfs.FileSystem, servers []DataServer, opts Options) (*Dist, error) {
	if len(servers) == 0 {
		return nil, fmt.Errorf("abstraction: need at least one data server")
	}
	if opts.ClientID == "" {
		opts.ClientID = "client"
	}
	d := &Dist{
		meta:     meta,
		servers:  servers,
		byName:   make(map[string]*DataServer, len(servers)),
		clientID: opts.ClientID,
	}
	for i := range servers {
		s := &servers[i]
		if s.Dir == "" {
			s.Dir = "/"
		}
		n, err := pathutil.Norm(s.Dir)
		if err != nil {
			return nil, vfs.EINVAL
		}
		s.Dir = n
		if _, dup := d.byName[s.Name]; dup {
			return nil, fmt.Errorf("abstraction: duplicate server name %q", s.Name)
		}
		d.byName[s.Name] = s
		if err := vfs.MkdirAll(s.FS, s.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("abstraction: preparing %s:%s: %w", s.Name, s.Dir, err)
		}
	}
	return d, nil
}

// Meta exposes the metadata filesystem (used by repair tools).
func (d *Dist) Meta() vfs.FileSystem { return d.meta }

// Servers lists the participating data servers.
func (d *Dist) Servers() []DataServer { return d.servers }

// server returns the data server a stub points at, or nil if that
// server is not part of this abstraction instance.
func (d *Dist) server(name string) *DataServer {
	return d.byName[name]
}

// pickServer chooses a data server for a new file. Round-robin spreads
// data evenly, which is what gives the DSFS its aggregate bandwidth.
func (d *Dist) pickServer() *DataServer {
	d.mu.Lock()
	s := &d.servers[d.next%len(d.servers)]
	d.next++
	d.mu.Unlock()
	return s
}

// uniqueName generates a data file name from the client identity,
// current time, a sequence number, and randomness — the collision
// avoidance recipe of §5.
func (d *Dist) uniqueName() string {
	var r [4]byte
	rand.Read(r[:])
	return fmt.Sprintf("%s.%d.%d.%08x",
		d.clientID, time.Now().Unix(), d.seq.Add(1), binary.BigEndian.Uint32(r[:]))
}

// Open opens or creates a distributed file. Creation follows the
// crash-safe ordering of §5: (1) pick a server and generate a unique
// data name, (2) exclusively create the stub, (3) exclusively create
// the data file. A crash between 2 and 3 leaves a dangling stub that
// opens as ENOENT — never an unreferenced data file.
func (d *Dist) Open(path string, flags int, mode uint32) (vfs.File, error) {
	if flags&vfs.O_CREAT != 0 {
		return d.create(path, flags, mode)
	}
	stub, err := readStub(d.meta, path)
	if err != nil {
		return nil, err
	}
	return d.openData(stub, flags, mode, path)
}

func (d *Dist) openData(stub Stub, flags int, mode uint32, name string) (vfs.File, error) {
	srv := d.server(stub.Server)
	if srv == nil {
		// The server left the abstraction: data unreachable, but only
		// for this file (failure coherence).
		return nil, vfs.EIO
	}
	f, err := srv.FS.Open(stub.Path, flags&^(vfs.O_CREAT|vfs.O_EXCL), mode)
	if err != nil {
		return nil, err
	}
	return &distFile{File: f, name: pathutil.Base(name)}, nil
}

func (d *Dist) create(path string, flags int, mode uint32) (vfs.File, error) {
	// Step 1: choose a server and a unique data file name.
	srv := d.pickServer()
	dataPath := pathutil.Join(srv.Dir, d.uniqueName())
	stub := Stub{Server: srv.Name, Path: dataPath}

	// Step 2: exclusively create the stub entry.
	sf, err := d.meta.Open(path, vfs.O_WRONLY|vfs.O_CREAT|vfs.O_EXCL, 0o644)
	switch vfs.AsErrno(err) {
	case vfs.EOK:
		// Fresh stub; fill it in.
		body := encodeStub(stub)
		if werr := vfs.WriteAll(sf, body, 0); werr != nil {
			sf.Close()
			d.meta.Unlink(path)
			return nil, werr
		}
		if cerr := sf.Close(); cerr != nil {
			d.meta.Unlink(path)
			return nil, cerr
		}
	case vfs.EEXIST:
		if flags&vfs.O_EXCL != 0 {
			return nil, vfs.EEXIST
		}
		// The file already exists: open its data, honoring O_TRUNC.
		existing, rerr := readStub(d.meta, path)
		if rerr != nil {
			return nil, rerr
		}
		return d.openData(existing, flags, mode, path)
	default:
		return nil, err
	}

	// Step 3: exclusively create the data file. On failure, undo the
	// stub so no dangling entry survives a *reported* failure (a crash
	// can still leave one — which is the safe orphan direction).
	df, err := srv.FS.Open(dataPath, flags|vfs.O_CREAT|vfs.O_EXCL, mode)
	if err != nil {
		d.meta.Unlink(path)
		return nil, err
	}
	return &distFile{File: df, name: pathutil.Base(path)}, nil
}

// Stat resolves the stub and reports the data file's size and times
// under the logical name. This is the double hop that gives DSFS twice
// the metadata latency of CFS in Figure 4.
func (d *Dist) Stat(path string) (vfs.FileInfo, error) {
	stub, err := readStub(d.meta, path)
	if vfs.AsErrno(err) == vfs.EISDIR {
		return d.meta.Stat(path)
	}
	if err != nil {
		return vfs.FileInfo{}, err
	}
	srv := d.server(stub.Server)
	if srv == nil {
		return vfs.FileInfo{}, vfs.EIO
	}
	dfi, err := srv.FS.Stat(stub.Path)
	if err != nil {
		return vfs.FileInfo{}, err
	}
	dfi.Name = pathutil.Base(path)
	return dfi, nil
}

// Unlink removes a distributed file: data first, then stub (§5), so a
// crash mid-way leaves a dangling stub rather than orphaned data. A
// stub whose data is already gone — dangling — is deletable.
func (d *Dist) Unlink(path string) error {
	stub, err := readStub(d.meta, path)
	if err != nil {
		return err
	}
	if srv := d.server(stub.Server); srv != nil {
		if err := srv.FS.Unlink(stub.Path); err != nil && vfs.AsErrno(err) != vfs.ENOENT {
			return err
		}
	}
	return d.meta.Unlink(path)
}

// Rename moves the stub (or directory) without touching the data of
// the file being renamed (§5: name-only operations never contact a
// file server). One exception demands data work: renaming *onto* an
// existing file atomically replaces its stub, so that file's data must
// be released afterwards or it would be orphaned forever.
func (d *Dist) Rename(oldPath, newPath string) error {
	victim, verr := readStub(d.meta, newPath)
	if err := d.meta.Rename(oldPath, newPath); err != nil {
		return err
	}
	if verr == nil {
		if srv := d.server(victim.Server); srv != nil {
			// Best effort: failure here orphans data, which GEMS-style
			// auditing can reclaim; the rename itself already happened.
			_ = srv.FS.Unlink(victim.Path)
		}
	}
	return nil
}

// Mkdir is a name-only operation on the metadata tree.
func (d *Dist) Mkdir(path string, mode uint32) error {
	return d.meta.Mkdir(path, mode)
}

// Rmdir is a name-only operation on the metadata tree.
func (d *Dist) Rmdir(path string) error {
	return d.meta.Rmdir(path)
}

// ReadDir lists the metadata tree; it never contacts data servers, so
// the namespace stays navigable even when servers are down.
func (d *Dist) ReadDir(path string) ([]vfs.DirEntry, error) {
	return d.meta.ReadDir(path)
}

// Truncate resolves the stub and truncates the data file.
func (d *Dist) Truncate(path string, size int64) error {
	stub, err := readStub(d.meta, path)
	if err != nil {
		return err
	}
	srv := d.server(stub.Server)
	if srv == nil {
		return vfs.EIO
	}
	return srv.FS.Truncate(stub.Path, size)
}

// Chmod applies to the stub entry: permissions are metadata.
func (d *Dist) Chmod(path string, mode uint32) error {
	return d.meta.Chmod(path, mode)
}

// StatFS aggregates capacity over all data servers — the whole point
// of a DPFS is escaping the capacity of a single device (§5).
func (d *Dist) StatFS() (vfs.FSInfo, error) {
	var total vfs.FSInfo
	var ok bool
	for i := range d.servers {
		info, err := d.servers[i].FS.StatFS()
		if err != nil {
			continue // a down server contributes nothing
		}
		total.TotalBytes += info.TotalBytes
		total.FreeBytes += info.FreeBytes
		ok = true
	}
	if !ok {
		return vfs.FSInfo{}, vfs.EIO
	}
	return total, nil
}

// ReadStub exposes the stub behind a logical path (repair tools and
// tests).
func (d *Dist) ReadStub(path string) (Stub, error) {
	return readStub(d.meta, path)
}

// Reconnect re-establishes every member connection that supports
// reconnection (vfs.Reconnector), so the adapter's §6 recovery
// protocol works through a whole distributed filesystem, not just a
// single server mount. Members that cannot reconnect are skipped;
// failure coherence tolerates them staying down.
func (d *Dist) Reconnect() error {
	var firstErr error
	if rc := vfs.Capabilities(d.meta).Reconnector; rc != nil {
		if err := rc.Reconnect(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for i := range d.servers {
		if rc := vfs.Capabilities(d.servers[i].FS).Reconnector; rc != nil {
			if err := rc.Reconnect(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

var _ vfs.Reconnector = (*Dist)(nil)

// distFile presents a data file under its logical name.
type distFile struct {
	vfs.File
	name string
}

// Fstat rewrites the data file's name to the logical one.
func (f *distFile) Fstat() (vfs.FileInfo, error) {
	fi, err := f.File.Fstat()
	if err != nil {
		return fi, err
	}
	fi.Name = f.name
	return fi, nil
}

// NewDPFS builds a distributed *private* filesystem: the directory
// tree lives in a filesystem private to one user — typically a local
// directory — so the abstraction needs no shared metadata server but
// cannot be shared either (§5).
func NewDPFS(meta vfs.FileSystem, servers []DataServer, opts Options) (*Dist, error) {
	return New(meta, servers, opts)
}

// NewDSFS builds a distributed *shared* filesystem: the directory tree
// itself lives on a file server (metaServer), so multiple clients can
// mount the same namespace. metaDir scopes the tree to a directory on
// that server, which may simultaneously serve as a data server —
// "a single file server might be dedicated for use as a DSFS
// directory, or it might serve double duty" (§5).
func NewDSFS(metaServer vfs.FileSystem, metaDir string, servers []DataServer, opts Options) (*Dist, error) {
	if err := vfs.MkdirAll(metaServer, metaDir, 0o755); err != nil {
		return nil, err
	}
	meta, err := vfs.Subtree(metaServer, metaDir)
	if err != nil {
		return nil, err
	}
	return New(meta, servers, opts)
}
