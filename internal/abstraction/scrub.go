package abstraction

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"sync"

	"tss/internal/vfs"
)

// Scrub is the mirror's self-healing audit: walk the tree, digest every
// file on every replica, and repair the copies that diverge from the
// majority. Verify-on-read (integrity.go) protects each individual
// read; scrub restores the redundancy so that protection keeps having
// healthy siblings to lean on — the GEMS-style continuous audit that
// mirror.go's header defers to. After a successful repairing scrub, an
// immediately following scrub reports zero divergent files.

// ScrubOptions configures one scrub pass. The zero value scans
// everything under "/" with the mirror's digest algorithm, four
// concurrent files, and no repair.
type ScrubOptions struct {
	// Root is the directory to scan (default "/").
	Root string
	// Algo is the digest algorithm (default the mirror's ChecksumAlgo).
	Algo string
	// Parallel bounds how many files are digested concurrently
	// (default 4).
	Parallel int
	// Repair rewrites divergent replicas from the winning copy; false
	// reports only.
	Repair bool
}

// ScrubFile describes one divergent file.
type ScrubFile struct {
	Path string
	// Digests holds the per-replica digest, indexed by replica; "" for
	// replicas that could not answer (missing file, transport error).
	Digests []string
	// Winner is the replica whose copy was judged authoritative, or -1
	// when no copy could be judged.
	Winner int
	// Repaired lists the replicas rewritten from the winner.
	Repaired []int
	// Err records why judgment or repair failed, if it did.
	Err string
}

// ScrubReport summarizes one scrub pass.
type ScrubReport struct {
	FilesScanned int
	Divergent    int
	Repaired     int // replica copies rewritten
	// Files lists the divergent files, in path order.
	Files []ScrubFile
	// Errors lists paths that could not be fully examined.
	Errors []string
}

// Scrub audits every file under opts.Root across all replicas and,
// with opts.Repair, rewrites divergent copies from the majority
// replica (ties broken by newest modification time). It deliberately
// includes demoted replicas: a replica demoted for serving corrupt
// bytes (integrity.go) is precisely the one scrub exists to repair, so
// every replica is asked and the ones that cannot answer simply show
// up with missing digests.
func (m *MirrorFS) Scrub(ctx context.Context, opts ScrubOptions) (*ScrubReport, error) {
	if opts.Root == "" {
		opts.Root = "/"
	}
	if opts.Algo == "" {
		opts.Algo = m.sumAlgo
	}
	if opts.Parallel <= 0 {
		opts.Parallel = 4
	}
	ready := make([]int, len(m.replicas))
	for i := range ready {
		ready[i] = i
	}
	files, dirs, walkErrs := m.scrubWalk(ctx, opts.Root, ready)
	if opts.Repair {
		m.scrubMkdirs(dirs, ready)
	}

	rep := &ScrubReport{Errors: walkErrs}
	var mu sync.Mutex
	sem := make(chan struct{}, opts.Parallel)
	var wg sync.WaitGroup
	for _, path := range files {
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(path string) {
			defer wg.Done()
			defer func() { <-sem }()
			sf, scanned := m.scrubFile(path, ready, opts)
			mu.Lock()
			defer mu.Unlock()
			if scanned {
				rep.FilesScanned++
				m.Stats.ScrubFiles.Add(1)
				m.mScrubFiles.Inc()
			}
			if sf == nil {
				return
			}
			if sf.Err != "" && sf.Winner < 0 {
				rep.Errors = append(rep.Errors, path+": "+sf.Err)
				return
			}
			rep.Divergent++
			m.Stats.ScrubDivergent.Add(1)
			m.mScrubDivergent.Inc()
			rep.Repaired += len(sf.Repaired)
			m.Stats.ScrubRepaired.Add(int64(len(sf.Repaired)))
			m.mScrubRepaired.Add(int64(len(sf.Repaired)))
			rep.Files = append(rep.Files, *sf)
		}(path)
	}
	wg.Wait()
	sort.Slice(rep.Files, func(i, j int) bool { return rep.Files[i].Path < rep.Files[j].Path })
	sort.Strings(rep.Errors)
	if err := ctx.Err(); err != nil {
		return rep, err
	}
	return rep, nil
}

// scrubWalk lists the union of the replica trees under root: a file
// missing from one replica must still be examined (its absence is the
// divergence). Returned file and directory paths are sorted.
func (m *MirrorFS) scrubWalk(ctx context.Context, root string, ready []int) (files, dirs []string, errs []string) {
	seenFile := map[string]bool{}
	seenDir := map[string]bool{}
	var walk func(dir string)
	walk = func(dir string) {
		if ctx.Err() != nil {
			return
		}
		type ent struct {
			name  string
			isDir bool
		}
		union := map[string]ent{}
		answered := false
		for _, i := range ready {
			ents, err := m.replicas[i].ReadDir(dir)
			m.record(i, err)
			if err != nil {
				// ENOENT just means this replica lacks the directory —
				// its files will show up as missing digests. Anything
				// else is worth reporting.
				if vfs.AsErrno(err) != vfs.ENOENT {
					errs = append(errs, fmt.Sprintf("%s: replica %d: %v", dir, i, err))
				}
				continue
			}
			answered = true
			for _, e := range ents {
				union[e.Name] = ent{name: e.Name, isDir: e.IsDir}
			}
		}
		if !answered {
			return
		}
		names := make([]string, 0, len(union))
		for name := range union {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			p := dir + "/" + name
			if dir == "/" {
				p = "/" + name
			}
			if union[name].isDir {
				if !seenDir[p] {
					seenDir[p] = true
					dirs = append(dirs, p)
					walk(p)
				}
				continue
			}
			seenFile[p] = true
		}
	}
	walk(root)
	files = make([]string, 0, len(seenFile))
	for p := range seenFile {
		files = append(files, p)
	}
	sort.Strings(files)
	sort.Strings(dirs)
	return files, dirs, errs
}

// scrubMkdirs ensures every directory of the union tree exists on
// every replica, so repairs of files inside them can land.
func (m *MirrorFS) scrubMkdirs(dirs []string, ready []int) {
	for _, dir := range dirs {
		for _, i := range ready {
			err := m.replicas[i].Mkdir(dir, 0o755)
			if err != nil && vfs.AsErrno(err) == vfs.EEXIST {
				err = nil
			}
			m.record(i, err)
		}
	}
}

// scrubFile digests one file on every replica, judges the winner, and
// optionally repairs the losers. It returns nil when all replicas
// agree; scanned is false when the context made examination moot.
func (m *MirrorFS) scrubFile(path string, ready []int, opts ScrubOptions) (sf *ScrubFile, scanned bool) {
	digests := make([]string, len(m.replicas))
	holders := 0
	for _, i := range ready {
		sum, err := vfs.ChecksumFile(m.replicas[i], path, opts.Algo)
		m.record(i, err)
		if err != nil {
			continue
		}
		digests[i] = sum
		holders++
	}
	if holders == 0 {
		return &ScrubFile{Path: path, Digests: digests, Winner: -1, Err: "no replica could digest the file"}, true
	}
	agree := true
	var first string
	for _, i := range ready {
		if first == "" {
			first = digests[i]
		} else if digests[i] != first {
			agree = false
		}
	}
	if agree && holders == len(ready) {
		return nil, true
	}
	sf = &ScrubFile{Path: path, Digests: append([]string(nil), digests...)}
	sf.Winner = m.judgeWinner(path, digests, ready)
	if sf.Winner < 0 {
		sf.Err = "no copy could be judged authoritative"
		return sf, true
	}
	if !opts.Repair {
		return sf, true
	}
	if err := m.repairFile(path, digests, ready, opts.Algo, sf); err != nil {
		sf.Err = err.Error()
	}
	return sf, true
}

// judgeWinner picks the authoritative replica for a divergent file:
// the digest held by the most replicas wins; a tie goes to the copy
// with the newest modification time (the survivor of the most recent
// write). A tie that neither votes nor mtime can break — two equally
// supported, equally old copies, the signature of bit rot with a
// replica absent — is refused (-1): picking blind would repair the
// wrong side half the time and turn divergence into loss, so scrub
// fails stop and waits for the missing replica's vote.
func (m *MirrorFS) judgeWinner(path string, digests []string, ready []int) int {
	votes := map[string]int{}
	for _, i := range ready {
		if digests[i] != "" {
			votes[digests[i]]++
		}
	}
	best := -1
	var bestMTime int64
	ambiguous := false
	for _, i := range ready {
		d := digests[i]
		if d == "" {
			continue
		}
		if best >= 0 {
			if votes[d] < votes[digests[best]] {
				continue
			}
			if votes[d] == votes[digests[best]] {
				if d == digests[best] {
					continue // same copy, keep the lower index
				}
				fi, err := m.replicas[i].Stat(path)
				m.record(i, err)
				if err != nil || fi.MTime < bestMTime {
					continue
				}
				if fi.MTime == bestMTime {
					ambiguous = true
					continue
				}
			}
		}
		fi, err := m.replicas[i].Stat(path)
		m.record(i, err)
		if err != nil {
			continue
		}
		best, bestMTime = i, fi.MTime
		ambiguous = false
	}
	if ambiguous {
		return -1
	}
	return best
}

// repairFile rewrites every replica that disagrees with the winner,
// from the winner's bytes — re-digested after the read, so a copy that
// rots between judgment and repair is never propagated.
func (m *MirrorFS) repairFile(path string, digests []string, ready []int, algo string, sf *ScrubFile) error {
	w := sf.Winner
	fi, err := m.replicas[w].Stat(path)
	m.record(w, err)
	if err != nil {
		return fmt.Errorf("stat winner replica %d: %w", w, err)
	}
	var buf bytes.Buffer
	if _, err := readFileTo(m.replicas[w], path, &buf); err != nil {
		m.record(w, err)
		return fmt.Errorf("read winner replica %d: %w", w, err)
	}
	got, err := digestOf(buf.Bytes(), algo)
	if err != nil {
		return err
	}
	if got != digests[w] {
		return vfs.ChecksumMismatch(path, algo, digests[w], got)
	}
	var firstErr error
	for _, i := range ready {
		if i == w || digests[i] == got {
			continue
		}
		// The copy engine stores with an end-to-end digest: a repair that
		// itself corrupts in flight is rejected, never installed.
		err := vfs.PutBytes(context.Background(), vfs.Loc{FS: m.replicas[i], Path: path},
			fi.Mode, buf.Bytes(), vfs.CopyOptions{Verify: true})
		m.record(i, err)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("repair replica %d: %w", i, err)
			}
			continue
		}
		// Repair rehabilitates: the replica now holds known-good bytes,
		// so its strike history no longer describes what it serves.
		m.strikes[i].Store(0)
		sf.Repaired = append(sf.Repaired, i)
	}
	return firstErr
}
