package abstraction

import (
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"

	"tss/internal/auth"
	"tss/internal/chirp"
	"tss/internal/netsim"
	"tss/internal/vfs"
)

func localFS(t *testing.T) *vfs.LocalFS {
	t.Helper()
	l, err := vfs.NewLocalFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// newDPFS builds a DPFS over local filesystems (fast path for unit
// tests; integration tests below use real Chirp servers).
func newDPFS(t *testing.T, nServers int) (*Dist, []DataServer) {
	t.Helper()
	var servers []DataServer
	for i := 0; i < nServers; i++ {
		servers = append(servers, DataServer{
			Name: fmt.Sprintf("host%d", i),
			FS:   localFS(t),
			Dir:  "/mydpfs",
		})
	}
	d, err := NewDPFS(localFS(t), servers, Options{ClientID: "10.0.0.1"})
	if err != nil {
		t.Fatal(err)
	}
	return d, servers
}

func TestDPFSBasicCycle(t *testing.T) {
	d, _ := newDPFS(t, 3)
	if err := vfs.WriteFile(d, "/paper.txt", []byte("the content"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := vfs.ReadFile(d, "/paper.txt")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "the content" {
		t.Errorf("read %q", data)
	}
	fi, err := d.Stat("/paper.txt")
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size != 11 || fi.IsDir || fi.Name != "paper.txt" {
		t.Errorf("stat = %+v", fi)
	}
	if err := d.Unlink("/paper.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Stat("/paper.txt"); vfs.AsErrno(err) != vfs.ENOENT {
		t.Errorf("stat after unlink = %v", err)
	}
}

func TestDPFSStubPointsAtDataServer(t *testing.T) {
	d, servers := newDPFS(t, 2)
	if err := vfs.WriteFile(d, "/f", []byte("xyz"), 0o644); err != nil {
		t.Fatal(err)
	}
	stub, err := d.ReadStub("/f")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(stub.Path, "/mydpfs/") {
		t.Errorf("data path = %q, want under /mydpfs", stub.Path)
	}
	var srv *DataServer
	for i := range servers {
		if servers[i].Name == stub.Server {
			srv = &servers[i]
		}
	}
	if srv == nil {
		t.Fatalf("stub names unknown server %q", stub.Server)
	}
	raw, err := vfs.ReadFile(srv.FS, stub.Path)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != "xyz" {
		t.Errorf("data file holds %q", raw)
	}
}

func TestDPFSSpreadsFilesRoundRobin(t *testing.T) {
	d, servers := newDPFS(t, 4)
	for i := 0; i < 8; i++ {
		if err := vfs.WriteFile(d, fmt.Sprintf("/f%d", i), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for i := range servers {
		ents, err := servers[i].FS.ReadDir("/mydpfs")
		if err != nil {
			t.Fatal(err)
		}
		if len(ents) != 2 {
			t.Errorf("server %d holds %d files, want 2 (round robin)", i, len(ents))
		}
	}
}

func TestDPFSNameOnlyOperations(t *testing.T) {
	d, servers := newDPFS(t, 2)
	if err := d.Mkdir("/figures", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(d, "/figures/b.eps", []byte("ps"), 0o644); err != nil {
		t.Fatal(err)
	}
	stubBefore, _ := d.ReadStub("/figures/b.eps")
	// Rename of file and of directory: metadata only, data untouched.
	if err := d.Rename("/figures/b.eps", "/figures/c.eps"); err != nil {
		t.Fatal(err)
	}
	if err := d.Rename("/figures", "/plots"); err != nil {
		t.Fatal(err)
	}
	stubAfter, err := d.ReadStub("/plots/c.eps")
	if err != nil {
		t.Fatal(err)
	}
	if stubAfter != stubBefore {
		t.Errorf("rename moved data: %+v -> %+v", stubBefore, stubAfter)
	}
	data, err := vfs.ReadFile(d, "/plots/c.eps")
	if err != nil || string(data) != "ps" {
		t.Fatalf("read after rename: %q, %v", data, err)
	}
	_ = servers
	ents, err := d.ReadDir("/")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name != "plots" || !ents[0].IsDir {
		t.Errorf("readdir = %+v", ents)
	}
	if err := d.Rmdir("/plots"); vfs.AsErrno(err) != vfs.ENOTEMPTY {
		t.Errorf("rmdir non-empty = %v", err)
	}
}

func TestDPFSExclusiveCreate(t *testing.T) {
	d, _ := newDPFS(t, 2)
	f, err := d.Open("/x", vfs.O_WRONLY|vfs.O_CREAT|vfs.O_EXCL, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := d.Open("/x", vfs.O_WRONLY|vfs.O_CREAT|vfs.O_EXCL, 0o644); vfs.AsErrno(err) != vfs.EEXIST {
		t.Errorf("second exclusive create = %v, want EEXIST", err)
	}
	// Non-exclusive create of an existing file opens the same data.
	f2, err := d.Open("/x", vfs.O_RDWR|vfs.O_CREAT, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if _, err := f2.Pwrite([]byte("hello"), 0); err != nil {
		t.Fatal(err)
	}
	data, _ := vfs.ReadFile(d, "/x")
	if string(data) != "hello" {
		t.Errorf("reopened create wrote elsewhere: %q", data)
	}
}

// A dangling stub (stub present, data gone — the crash residue of §5)
// opens as ENOENT and can be unlinked.
func TestDPFSDanglingStub(t *testing.T) {
	d, servers := newDPFS(t, 1)
	if err := vfs.WriteFile(d, "/f", []byte("data"), 0o644); err != nil {
		t.Fatal(err)
	}
	stub, _ := d.ReadStub("/f")
	if err := servers[0].FS.Unlink(stub.Path); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Open("/f", vfs.O_RDONLY, 0); vfs.AsErrno(err) != vfs.ENOENT {
		t.Errorf("open dangling stub = %v, want ENOENT", err)
	}
	// "easily deleted by a user"
	if err := d.Unlink("/f"); err != nil {
		t.Errorf("unlink dangling stub: %v", err)
	}
}

// If data creation fails, the stub must be rolled back: no dangling
// entry survives a reported (non-crash) failure.
func TestDPFSCreateRollsBackStubOnDataFailure(t *testing.T) {
	meta := localFS(t)
	d, err := NewDPFS(meta, []DataServer{{Name: "dead", FS: failingFS{}, Dir: "/"}}, Options{})
	if err == nil {
		// MkdirAll on the failing FS should already have failed; if
		// construction worked (Mkdir tolerated), force create.
		if _, cerr := d.Open("/f", vfs.O_WRONLY|vfs.O_CREAT, 0o644); cerr == nil {
			t.Fatal("create on dead server succeeded")
		}
		if _, serr := meta.Stat("/f"); vfs.AsErrno(serr) != vfs.ENOENT {
			t.Errorf("stub not rolled back: %v", serr)
		}
	}
}

// failingFS simulates an unreachable server: every call fails with
// ENOTCONN except Mkdir (so construction can succeed).
type failingFS struct{}

func (failingFS) Open(string, int, uint32) (vfs.File, error) { return nil, vfs.ENOTCONN }
func (failingFS) Stat(string) (vfs.FileInfo, error)          { return vfs.FileInfo{}, vfs.ENOTCONN }
func (failingFS) Unlink(string) error                        { return vfs.ENOTCONN }
func (failingFS) Rename(string, string) error                { return vfs.ENOTCONN }
func (failingFS) Mkdir(string, uint32) error                 { return nil }
func (failingFS) Rmdir(string) error                         { return vfs.ENOTCONN }
func (failingFS) ReadDir(string) ([]vfs.DirEntry, error)     { return nil, vfs.ENOTCONN }
func (failingFS) Truncate(string, int64) error               { return vfs.ENOTCONN }
func (failingFS) Chmod(string, uint32) error                 { return vfs.ENOTCONN }
func (failingFS) StatFS() (vfs.FSInfo, error)                { return vfs.FSInfo{}, vfs.ENOTCONN }

func TestDPFSTruncate(t *testing.T) {
	d, _ := newDPFS(t, 2)
	if err := vfs.WriteFile(d, "/f", []byte("0123456789"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := d.Truncate("/f", 4); err != nil {
		t.Fatal(err)
	}
	data, _ := vfs.ReadFile(d, "/f")
	if string(data) != "0123" {
		t.Errorf("after truncate: %q", data)
	}
	fi, _ := d.Stat("/f")
	if fi.Size != 4 {
		t.Errorf("stat size = %d", fi.Size)
	}
}

func TestDPFSAggregateStatFS(t *testing.T) {
	d, _ := newDPFS(t, 3)
	one, err := d.servers[0].FS.StatFS()
	if err != nil {
		t.Fatal(err)
	}
	all, err := d.StatFS()
	if err != nil {
		t.Fatal(err)
	}
	if all.TotalBytes < 3*one.TotalBytes/2 {
		t.Errorf("aggregate capacity %d not > single %d", all.TotalBytes, one.TotalBytes)
	}
}

func TestStubEncodeDecode(t *testing.T) {
	for _, s := range []Stub{
		{Server: "host5", Path: "/mydpfs/file596"},
		{Server: "a name with spaces", Path: "/p a t h/%weird"},
		{Server: "", Path: ""},
	} {
		got, err := decodeStub(encodeStub(s))
		if err != nil {
			t.Fatalf("decode(%+v): %v", s, err)
		}
		if got != s {
			t.Errorf("round trip: %+v -> %+v", s, got)
		}
	}
	for _, bad := range [][]byte{nil, []byte("not a stub"), []byte("tss-stub v999 a b"), []byte("tss-stub v1 onlyone")} {
		if _, err := decodeStub(bad); err == nil {
			t.Errorf("decodeStub(%q) accepted garbage", bad)
		}
	}
}

// Randomized op sequence property: after any sequence of creates,
// writes, renames and unlinks, every live logical file reads back its
// expected content, and the number of data files on the servers equals
// the number of live logical files (no leaked data, no lost data).
func TestDPFSRandomOpsInvariant(t *testing.T) {
	d, servers := newDPFS(t, 3)
	rng := rand.New(rand.NewSource(42))
	state := map[string][]byte{}
	names := []string{"/a", "/b", "/c", "/d", "/e"}
	for i := 0; i < 400; i++ {
		name := names[rng.Intn(len(names))]
		switch rng.Intn(4) {
		case 0: // create/overwrite
			content := []byte(fmt.Sprintf("content-%d", i))
			if err := vfs.WriteFile(d, name, content, 0o644); err != nil {
				t.Fatalf("write %s: %v", name, err)
			}
			state[name] = content
		case 1: // unlink
			err := d.Unlink(name)
			if _, live := state[name]; live {
				if err != nil {
					t.Fatalf("unlink live %s: %v", name, err)
				}
				delete(state, name)
			} else if vfs.AsErrno(err) != vfs.ENOENT {
				t.Fatalf("unlink dead %s = %v, want ENOENT", name, err)
			}
		case 2: // rename
			to := names[rng.Intn(len(names))]
			if to == name {
				continue
			}
			err := d.Rename(name, to)
			if _, live := state[name]; live {
				if err != nil {
					t.Fatalf("rename %s -> %s: %v", name, to, err)
				}
				state[to] = state[name]
				delete(state, name)
			} else if err == nil {
				t.Fatalf("rename of dead %s succeeded", name)
			}
		case 3: // read
			data, err := vfs.ReadFile(d, name)
			if want, live := state[name]; live {
				if err != nil || !bytes.Equal(data, want) {
					t.Fatalf("read %s = %q, %v; want %q", name, data, err, want)
				}
			} else if vfs.AsErrno(err) != vfs.ENOENT {
				t.Fatalf("read dead %s = %v, want ENOENT", name, err)
			}
		}
	}
	dataFiles := 0
	for i := range servers {
		ents, err := servers[i].FS.ReadDir("/mydpfs")
		if err != nil {
			t.Fatal(err)
		}
		dataFiles += len(ents)
	}
	if dataFiles != len(state) {
		t.Errorf("%d data files on servers, %d live logical files", dataFiles, len(state))
	}
}

// --- DSFS integration over real Chirp servers on a simulated network ---

type chirpCluster struct {
	nw      *netsim.Network
	servers []*chirp.Server
	clients []*chirp.Client
	names   []string
	stops   []func()
}

func startChirpCluster(t *testing.T, n int) *chirpCluster {
	t.Helper()
	c := &chirpCluster{nw: netsim.NewNetwork()}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("node%d.sim", i)
		srv, err := chirp.NewServer(t.TempDir(), chirp.ServerConfig{
			Name:      name,
			Owner:     "hostname:client.sim",
			Verifiers: []auth.Verifier{&auth.HostnameVerifier{}},
		})
		if err != nil {
			t.Fatal(err)
		}
		l, err := c.nw.Listen(name)
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(l)
		c.stops = append(c.stops, func() { l.Close() })
		cli, err := chirp.Dial(chirp.ClientConfig{
			Dial: func() (net.Conn, error) {
				return c.nw.DialFrom("client.sim", name, netsim.Loopback)
			},
			Credentials: []auth.Credential{auth.HostnameCredential{}},
			Timeout:     5 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		c.servers = append(c.servers, srv)
		c.clients = append(c.clients, cli)
		c.names = append(c.names, name)
	}
	t.Cleanup(func() {
		for _, cli := range c.clients {
			cli.Close()
		}
		for _, stop := range c.stops {
			stop()
		}
	})
	return c
}

// dsfs builds a DSFS whose metadata tree lives on server 0 (double
// duty: directory server and data server) and whose data spreads over
// all servers.
func buildDSFS(t *testing.T, c *chirpCluster) *Dist {
	t.Helper()
	var servers []DataServer
	for i := range c.clients {
		servers = append(servers, DataServer{Name: c.names[i], FS: c.clients[i], Dir: "/dsfs-data"})
	}
	d, err := NewDSFS(c.clients[0], "/dsfs-meta", servers, Options{ClientID: "client.sim"})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDSFSOverChirp(t *testing.T) {
	c := startChirpCluster(t, 3)
	d := buildDSFS(t, c)
	if err := d.Mkdir("/run5", 0o755); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("evt"), 4096)
	for i := 0; i < 6; i++ {
		if err := vfs.WriteFile(d, fmt.Sprintf("/run5/out%d", i), payload, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		data, err := vfs.ReadFile(d, fmt.Sprintf("/run5/out%d", i))
		if err != nil || !bytes.Equal(data, payload) {
			t.Fatalf("readback %d: %v", i, err)
		}
	}
	// A second client sharing the same namespace sees the files: this
	// is what distinguishes DSFS from DPFS.
	d2 := buildDSFS(t, c)
	ents, err := d2.ReadDir("/run5")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 6 {
		t.Errorf("second client sees %d files, want 6", len(ents))
	}
	data, err := vfs.ReadFile(d2, "/run5/out0")
	if err != nil || !bytes.Equal(data, payload) {
		t.Fatalf("second client read: %v", err)
	}
}

// Failure coherence (§3, §5): killing one data server leaves the
// directory tree navigable and files on other servers usable; only
// files on the dead server become unavailable.
func TestDSFSFailureCoherence(t *testing.T) {
	c := startChirpCluster(t, 3)
	d := buildDSFS(t, c)
	// Round-robin placement: file i lands on server (i+?)%3; find one
	// file per server by checking stubs.
	byServer := map[string]string{}
	for i := 0; i < 9; i++ {
		name := fmt.Sprintf("/f%d", i)
		if err := vfs.WriteFile(d, name, []byte(name), 0o644); err != nil {
			t.Fatal(err)
		}
		stub, _ := d.ReadStub(name)
		byServer[stub.Server] = name
	}
	if len(byServer) != 3 {
		t.Fatalf("files landed on %d servers, want 3", len(byServer))
	}
	// Kill server 2 (never the metadata server, which is server 0).
	victim := c.names[2]
	c.clients[2].Close()
	c.stops[2]()

	// Namespace remains navigable.
	ents, err := d.ReadDir("/")
	if err != nil {
		t.Fatalf("readdir after failure: %v", err)
	}
	if len(ents) != 9 {
		t.Errorf("namespace lost entries: %d", len(ents))
	}
	// Files on surviving servers are readable.
	for srv, name := range byServer {
		data, err := vfs.ReadFile(d, name)
		if srv == victim {
			if err == nil {
				t.Errorf("file %s on dead server readable", name)
			}
			continue
		}
		if err != nil || string(data) != name {
			t.Errorf("file %s on live server %s: %v", name, srv, err)
		}
	}
}

func TestDSFSMetadataDoubleHop(t *testing.T) {
	// DSFS stat must contact both the metadata server and the data
	// server; verify by counting requests (this is the mechanism
	// behind the 2x metadata latency in Figure 4).
	c := startChirpCluster(t, 2)
	d := buildDSFS(t, c)
	if err := vfs.WriteFile(d, "/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	stub, _ := d.ReadStub("/f")
	if stub.Server == c.names[0] {
		// Data landed on the metadata server; use the other file.
		if err := vfs.WriteFile(d, "/g", []byte("y"), 0o644); err != nil {
			t.Fatal(err)
		}
		stub, _ = d.ReadStub("/g")
	}
	dataIdx := 0
	for i, n := range c.names {
		if n == stub.Server {
			dataIdx = i
		}
	}
	before := c.servers[dataIdx].Stats.Requests.Load()
	name := "/f"
	if stub, _ := d.ReadStub("/f"); stub.Server != c.names[dataIdx] {
		name = "/g"
	}
	if _, err := d.Stat(name); err != nil {
		t.Fatal(err)
	}
	if got := c.servers[dataIdx].Stats.Requests.Load() - before; got < 1 {
		t.Errorf("stat did not contact the data server (requests +%d)", got)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(localFS(t), nil, Options{}); err == nil {
		t.Error("no servers accepted")
	}
	fs := localFS(t)
	dup := []DataServer{{Name: "same", FS: fs, Dir: "/a"}, {Name: "same", FS: fs, Dir: "/b"}}
	if _, err := New(localFS(t), dup, Options{}); err == nil {
		t.Error("duplicate server names accepted")
	}
}

func TestCFSIsPassthrough(t *testing.T) {
	fs := localFS(t)
	c := NewCFS("node0", fs)
	if c.Name() != "node0" {
		t.Errorf("name = %q", c.Name())
	}
	if err := vfs.WriteFile(c, "/f", []byte("via cfs"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := vfs.ReadFile(fs, "/f")
	if err != nil || string(data) != "via cfs" {
		t.Fatalf("underlying fs: %q, %v", data, err)
	}
}
