package abstraction

import (
	"fmt"
	"testing"

	"tss/internal/pathutil"
	"tss/internal/vfs"
)

func TestFsckCleanSystem(t *testing.T) {
	d, _ := newDPFS(t, 3)
	d.Mkdir("/sub", 0o755)
	for i := 0; i < 5; i++ {
		if err := vfs.WriteFile(d, fmt.Sprintf("/sub/f%d", i), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	report, err := d.Fsck(FsckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Clean() {
		t.Errorf("clean system reported dirty: %s", report)
	}
	if report.FilesChecked != 5 || report.DirsChecked != 2 {
		t.Errorf("counts = %+v", report)
	}
}

func TestFsckFindsAndRepairsDanglingStub(t *testing.T) {
	d, servers := newDPFS(t, 2)
	if err := vfs.WriteFile(d, "/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	stub, _ := d.ReadStub("/f")
	for i := range servers {
		if servers[i].Name == stub.Server {
			servers[i].FS.Unlink(stub.Path)
		}
	}
	report, err := d.Fsck(FsckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.DanglingStubs) != 1 || report.DanglingStubs[0] != "/f" {
		t.Fatalf("dangling = %v", report.DanglingStubs)
	}
	// Repair pass.
	if _, err := d.Fsck(FsckOptions{RemoveDangling: true}); err != nil {
		t.Fatal(err)
	}
	if vfs.Exists(d.Meta(), "/f") {
		t.Error("dangling stub not removed")
	}
	report, _ = d.Fsck(FsckOptions{})
	if !report.Clean() {
		t.Errorf("after repair: %s", report)
	}
}

func TestFsckFindsAndReclaimsOrphan(t *testing.T) {
	d, servers := newDPFS(t, 2)
	if err := vfs.WriteFile(d, "/keep", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Plant an orphan data file directly on a server.
	if err := vfs.WriteFile(servers[0].FS, "/mydpfs/orphan.data", []byte("lost"), 0o644); err != nil {
		t.Fatal(err)
	}
	report, err := d.Fsck(FsckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.OrphanedData) != 1 {
		t.Fatalf("orphans = %v", report.OrphanedData)
	}
	if _, err := d.Fsck(FsckOptions{RemoveOrphans: true}); err != nil {
		t.Fatal(err)
	}
	if vfs.Exists(servers[0].FS, "/mydpfs/orphan.data") {
		t.Error("orphan not reclaimed")
	}
	// The referenced file survived.
	if data, err := vfs.ReadFile(d, "/keep"); err != nil || string(data) != "x" {
		t.Errorf("referenced file damaged: %q, %v", data, err)
	}
}

func TestFsckFlagsBadStubs(t *testing.T) {
	d, _ := newDPFS(t, 1)
	if err := vfs.WriteFile(d.Meta(), "/junk", []byte("not a stub at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	report, err := d.Fsck(FsckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.BadStubs) != 1 {
		t.Errorf("bad stubs = %v", report.BadStubs)
	}
	// Repair removes them: a partial stub has no data behind it.
	if _, err := d.Fsck(FsckOptions{RemoveDangling: true}); err != nil {
		t.Fatal(err)
	}
	if vfs.Exists(d.Meta(), "/junk") {
		t.Error("bad stub not removed by repair")
	}
}

// TestFsckValidatesStripes: a metadata tree holding both ordinary
// stubs and stripe descriptors is checked end to end — the stripe is
// recognized (not misreported as a bad stub), its members are
// digested, and missing or geometry-inconsistent members are reported
// as damage.
func TestFsckValidatesStripes(t *testing.T) {
	d, servers := newDPFS(t, 3)
	s, err := NewStriped(d.Meta(), servers, StripeOptions{StripeSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 200)
	for i := range data {
		data[i] = byte(i)
	}
	if err := vfs.WriteFile(s, "/striped", data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(d, "/plain", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := d.Fsck(FsckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("clean stripe reported dirty: %s", rep)
	}
	if rep.Stripes != 1 {
		t.Errorf("stripes recognized = %d, want 1", rep.Stripes)
	}
	digests := rep.StripeDigests["/striped"]
	if len(digests) != 3 {
		t.Fatalf("stripe digests = %v, want 3 members", digests)
	}
	for k, sum := range digests {
		if sum == "" {
			t.Errorf("member %d has no digest", k)
		}
	}

	// Geometry damage: a member shorter than the logical size demands.
	raw, err := vfs.ReadFile(d.Meta(), "/striped")
	if err != nil {
		t.Fatal(err)
	}
	desc, ok := parseStripeDesc(raw)
	if !ok {
		t.Fatal("descriptor no longer parses")
	}
	memberPath := func(k int) (vfs.FileSystem, string) {
		for i := range servers {
			if servers[i].Name == desc.Servers[k] {
				return servers[i].FS, pathutil.Join(servers[i].Dir, desc.Base)
			}
		}
		t.Fatalf("no server %q", desc.Servers[k])
		return nil, ""
	}
	fs1, p1 := memberPath(1)
	if err := fs1.Truncate(p1, 50); err != nil {
		t.Fatal(err)
	}
	rep, err = d.Fsck(FsckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() || len(rep.StripeDamaged) != 1 {
		t.Fatalf("truncated member not reported: %s (%v)", rep, rep.StripeDamaged)
	}

	// Missing member: the data file is gone entirely.
	if err := fs1.Unlink(p1); err != nil {
		t.Fatal(err)
	}
	rep, err = d.Fsck(FsckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.StripeDamaged) != 1 {
		t.Fatalf("missing member not reported: %v", rep.StripeDamaged)
	}
	// Member files are referenced, never orphans — even while damaged.
	if len(rep.OrphanedData) != 0 {
		t.Errorf("stripe members misreported as orphans: %v", rep.OrphanedData)
	}
}
