package abstraction

import (
	"fmt"
	"testing"

	"tss/internal/vfs"
)

func TestFsckCleanSystem(t *testing.T) {
	d, _ := newDPFS(t, 3)
	d.Mkdir("/sub", 0o755)
	for i := 0; i < 5; i++ {
		if err := vfs.WriteFile(d, fmt.Sprintf("/sub/f%d", i), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	report, err := d.Fsck(FsckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Clean() {
		t.Errorf("clean system reported dirty: %s", report)
	}
	if report.FilesChecked != 5 || report.DirsChecked != 2 {
		t.Errorf("counts = %+v", report)
	}
}

func TestFsckFindsAndRepairsDanglingStub(t *testing.T) {
	d, servers := newDPFS(t, 2)
	if err := vfs.WriteFile(d, "/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	stub, _ := d.ReadStub("/f")
	for i := range servers {
		if servers[i].Name == stub.Server {
			servers[i].FS.Unlink(stub.Path)
		}
	}
	report, err := d.Fsck(FsckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.DanglingStubs) != 1 || report.DanglingStubs[0] != "/f" {
		t.Fatalf("dangling = %v", report.DanglingStubs)
	}
	// Repair pass.
	if _, err := d.Fsck(FsckOptions{RemoveDangling: true}); err != nil {
		t.Fatal(err)
	}
	if vfs.Exists(d.Meta(), "/f") {
		t.Error("dangling stub not removed")
	}
	report, _ = d.Fsck(FsckOptions{})
	if !report.Clean() {
		t.Errorf("after repair: %s", report)
	}
}

func TestFsckFindsAndReclaimsOrphan(t *testing.T) {
	d, servers := newDPFS(t, 2)
	if err := vfs.WriteFile(d, "/keep", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Plant an orphan data file directly on a server.
	if err := vfs.WriteFile(servers[0].FS, "/mydpfs/orphan.data", []byte("lost"), 0o644); err != nil {
		t.Fatal(err)
	}
	report, err := d.Fsck(FsckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.OrphanedData) != 1 {
		t.Fatalf("orphans = %v", report.OrphanedData)
	}
	if _, err := d.Fsck(FsckOptions{RemoveOrphans: true}); err != nil {
		t.Fatal(err)
	}
	if vfs.Exists(servers[0].FS, "/mydpfs/orphan.data") {
		t.Error("orphan not reclaimed")
	}
	// The referenced file survived.
	if data, err := vfs.ReadFile(d, "/keep"); err != nil || string(data) != "x" {
		t.Errorf("referenced file damaged: %q, %v", data, err)
	}
}

func TestFsckFlagsBadStubs(t *testing.T) {
	d, _ := newDPFS(t, 1)
	if err := vfs.WriteFile(d.Meta(), "/junk", []byte("not a stub at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	report, err := d.Fsck(FsckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.BadStubs) != 1 {
		t.Errorf("bad stubs = %v", report.BadStubs)
	}
	// Repair removes them: a partial stub has no data behind it.
	if _, err := d.Fsck(FsckOptions{RemoveDangling: true}); err != nil {
		t.Fatal(err)
	}
	if vfs.Exists(d.Meta(), "/junk") {
		t.Error("bad stub not removed by repair")
	}
}
