package vfs

import (
	"bytes"
	"errors"
	"io/fs"
	"os"
	"testing"
	"testing/quick"
)

func newLocal(t *testing.T) *LocalFS {
	t.Helper()
	l, err := NewLocalFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLocalFSBasicCycle(t *testing.T) {
	l := newLocal(t)
	if err := WriteFile(l, "/hello.txt", []byte("hello world"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := ReadFile(l, "/hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello world" {
		t.Errorf("read back %q", data)
	}
	fi, err := l.Stat("/hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size != 11 || fi.IsDir || fi.Name != "hello.txt" {
		t.Errorf("stat = %+v", fi)
	}
	if fi.Inode == 0 {
		t.Error("inode not populated")
	}
}

func TestLocalFSMkdirReadDirRmdir(t *testing.T) {
	l := newLocal(t)
	if err := l.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(l, "/d/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	ents, err := l.ReadDir("/d")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name != "f" || ents[0].IsDir {
		t.Errorf("entries = %+v", ents)
	}
	if err := l.Rmdir("/d"); AsErrno(err) != ENOTEMPTY {
		t.Errorf("rmdir non-empty = %v, want ENOTEMPTY", err)
	}
	if err := l.Unlink("/d/f"); err != nil {
		t.Fatal(err)
	}
	if err := l.Rmdir("/d"); err != nil {
		t.Fatal(err)
	}
}

func TestLocalFSErrors(t *testing.T) {
	l := newLocal(t)
	if _, err := l.Stat("/missing"); AsErrno(err) != ENOENT {
		t.Errorf("stat missing = %v", err)
	}
	if _, err := l.Open("/missing", O_RDONLY, 0); AsErrno(err) != ENOENT {
		t.Errorf("open missing = %v", err)
	}
	if err := l.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := l.Mkdir("/d", 0o755); AsErrno(err) != EEXIST {
		t.Errorf("mkdir existing = %v", err)
	}
	if err := l.Unlink("/d"); AsErrno(err) != EISDIR {
		t.Errorf("unlink dir = %v", err)
	}
	if _, err := l.Open("/d", O_RDONLY, 0); AsErrno(err) != EISDIR {
		t.Errorf("open dir = %v", err)
	}
	if err := WriteFile(l, "/f", nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := l.Rmdir("/f"); AsErrno(err) != ENOTDIR {
		t.Errorf("rmdir file = %v", err)
	}
	if _, err := l.Open("/f", O_WRONLY|O_CREAT|O_EXCL, 0o644); AsErrno(err) != EEXIST {
		t.Errorf("O_EXCL existing = %v", err)
	}
}

func TestLocalFSConfinement(t *testing.T) {
	dir := t.TempDir()
	l, err := NewLocalFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Plant a file outside the root; ".." must not reach it.
	outside := dir + "-outside"
	if err := os.WriteFile(outside, []byte("secret"), 0o644); err != nil {
		t.Fatal(err)
	}
	defer os.Remove(outside)
	if _, err := l.Stat("/../" + "x"); AsErrno(err) != ENOENT {
		// ".." clamps to root; the only acceptable outcomes are ENOENT
		// (no such file inside the root) — never the outside file.
		t.Errorf("escape stat = %v", err)
	}
}

func TestPreadPwriteOffsets(t *testing.T) {
	l := newLocal(t)
	f, err := l.Open("/f", O_RDWR|O_CREAT, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Pwrite([]byte("abcdef"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Pwrite([]byte("XY"), 2); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 6)
	n, err := f.Pread(buf, 0)
	if err != nil || n != 6 {
		t.Fatalf("pread = %d, %v", n, err)
	}
	if string(buf) != "abXYef" {
		t.Errorf("content = %q", buf)
	}
	// EOF: read past end returns n=0, nil error.
	n, err = f.Pread(buf, 100)
	if err != nil || n != 0 {
		t.Errorf("pread at EOF = %d, %v", n, err)
	}
	if err := f.Ftruncate(3); err != nil {
		t.Fatal(err)
	}
	fi, err := f.Fstat()
	if err != nil || fi.Size != 3 {
		t.Errorf("after truncate: %+v, %v", fi, err)
	}
}

func TestRenameAndTruncate(t *testing.T) {
	l := newLocal(t)
	if err := WriteFile(l, "/a", []byte("0123456789"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := l.Rename("/a", "/b"); err != nil {
		t.Fatal(err)
	}
	if Exists(l, "/a") || !Exists(l, "/b") {
		t.Error("rename did not move the file")
	}
	if err := l.Truncate("/b", 4); err != nil {
		t.Fatal(err)
	}
	data, _ := ReadFile(l, "/b")
	if string(data) != "0123" {
		t.Errorf("after truncate: %q", data)
	}
}

func TestCopyFile(t *testing.T) {
	l := newLocal(t)
	payload := bytes.Repeat([]byte("zyxw"), 50000)
	if err := WriteFile(l, "/src", payload, 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := CopyFile(l, "/dst", l, "/src", 8192)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(payload)) {
		t.Errorf("copied %d, want %d", n, len(payload))
	}
	got, _ := ReadFile(l, "/dst")
	if !bytes.Equal(got, payload) {
		t.Error("copy corrupted data")
	}
}

func TestWriteAllReadFull(t *testing.T) {
	l := newLocal(t)
	f, err := l.Open("/f", O_RDWR|O_CREAT, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := WriteAll(f, []byte("hello"), 10); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if err := ReadFull(f, buf, 10); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Errorf("got %q", buf)
	}
	if err := ReadFull(f, buf, 13); err == nil {
		t.Error("ReadFull past EOF succeeded")
	}
}

func TestErrnoErrorsIs(t *testing.T) {
	if !errors.Is(ENOENT, fs.ErrNotExist) {
		t.Error("ENOENT is not fs.ErrNotExist")
	}
	if !errors.Is(EACCES, fs.ErrPermission) {
		t.Error("EACCES is not fs.ErrPermission")
	}
	if !errors.Is(EEXIST, fs.ErrExist) {
		t.Error("EEXIST is not fs.ErrExist")
	}
	if errors.Is(ENOENT, fs.ErrPermission) {
		t.Error("ENOENT matched fs.ErrPermission")
	}
	if ENOENT.Error() == "" || Errno(9999).Error() == "" {
		t.Error("empty error text")
	}
}

func TestAsErrnoMappings(t *testing.T) {
	if AsErrno(nil) != EOK {
		t.Error("AsErrno(nil)")
	}
	if AsErrno(os.ErrNotExist) != ENOENT {
		t.Error("os.ErrNotExist mapping")
	}
	if AsErrno(os.ErrPermission) != EACCES {
		t.Error("os.ErrPermission mapping")
	}
	if AsErrno(errors.New("weird")) != EIO {
		t.Error("unknown error should map to EIO")
	}
	if AsErrno(ESTALE) != ESTALE {
		t.Error("identity mapping")
	}
}

// Property: Code/FromCode are inverses over all errnos.
func TestCodeRoundTrip(t *testing.T) {
	f := func(v uint8) bool {
		e := Errno(v%120 + 1)
		return FromCode(Code(e)) == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStatFS(t *testing.T) {
	l := newLocal(t)
	info, err := l.StatFS()
	if err != nil {
		t.Fatal(err)
	}
	if info.TotalBytes <= 0 || info.FreeBytes < 0 || info.FreeBytes > info.TotalBytes {
		t.Errorf("statfs = %+v", info)
	}
}

func TestOpenAppendAndSync(t *testing.T) {
	l := newLocal(t)
	if err := WriteFile(l, "/log", []byte("one"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := l.Open("/log", O_WRONLY|O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	// With O_APPEND the kernel appends regardless of offset.
	if _, err := f.Pwrite([]byte("two"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	data, _ := ReadFile(l, "/log")
	if string(data) != "onetwo" {
		t.Errorf("append result = %q", data)
	}
}
