package vfs

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestCombineCRC32C checks the composition law against the straight
// digest across awkward split points: empty halves, single bytes, odd
// lengths, and power-of-two chunk boundaries.
func TestCombineCRC32C(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	data := make([]byte, 1<<16+37)
	rng.Read(data)
	whole := CRC32C(0, data)
	for _, split := range []int{0, 1, 2, 31, 255, 256, 4096, 4097, len(data) / 3, len(data) - 1, len(data)} {
		a, b := data[:split], data[split:]
		got := CombineCRC32C(CRC32C(0, a), CRC32C(0, b), int64(len(b)))
		if got != whole {
			t.Errorf("split at %d: combined %08x, want %08x", split, got, whole)
		}
	}
}

// TestCombineCRC32CFold composes many chunks in offset order, the way
// the multipart engine assembles the whole-file digest.
func TestCombineCRC32CFold(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := make([]byte, 100_003)
	rng.Read(data)
	whole := CRC32C(0, data)
	for _, chunk := range []int{1, 13, 4096, 50_000, len(data)} {
		var composed uint32
		for off := 0; off < len(data); off += chunk {
			end := off + chunk
			if end > len(data) {
				end = len(data)
			}
			c := CRC32C(0, data[off:end])
			if off == 0 {
				composed = c
			} else {
				composed = CombineCRC32C(composed, c, int64(end-off))
			}
		}
		if composed != whole {
			t.Errorf("chunk %d: composed %08x, want %08x", chunk, composed, whole)
		}
	}
}

// TestCRC32CFormatParse round-trips the wire form.
func TestCRC32CFormatParse(t *testing.T) {
	crc := CRC32C(0, bytes.Repeat([]byte("wire"), 9))
	s := FormatCRC32C(crc)
	if len(s) != 8 {
		t.Fatalf("formatted crc %q, want 8 hex digits", s)
	}
	back, err := ParseCRC32C(s)
	if err != nil {
		t.Fatal(err)
	}
	if back != crc {
		t.Errorf("parse(format(%08x)) = %08x", crc, back)
	}
	if _, err := ParseCRC32C("zzzz"); err == nil {
		t.Error("ParseCRC32C accepted junk")
	}
}
