package vfs

import (
	"bytes"
	"testing"
)

func TestSubtreeBasicOps(t *testing.T) {
	base := newLocal(t)
	if err := MkdirAll(base, "/vol/a", 0o755); err != nil {
		t.Fatal(err)
	}
	sub, err := Subtree(base, "/vol")
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(sub, "/a/f", []byte("deep"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Visible on the base under the prefix.
	data, err := ReadFile(base, "/vol/a/f")
	if err != nil || string(data) != "deep" {
		t.Fatalf("base view = %q, %v", data, err)
	}
	// All namespace ops translate.
	if err := sub.Mkdir("/b", 0o755); err != nil {
		t.Fatal(err)
	}
	ents, err := sub.ReadDir("/")
	if err != nil || len(ents) != 2 {
		t.Fatalf("readdir / = %+v, %v", ents, err)
	}
	if err := sub.Rename("/a/f", "/b/g"); err != nil {
		t.Fatal(err)
	}
	fi, err := sub.Stat("/b/g")
	if err != nil || fi.Size != 4 {
		t.Fatalf("stat = %+v, %v", fi, err)
	}
	if err := sub.Truncate("/b/g", 2); err != nil {
		t.Fatal(err)
	}
	if err := sub.Chmod("/b/g", 0o600); err != nil {
		t.Fatal(err)
	}
	if err := sub.Unlink("/b/g"); err != nil {
		t.Fatal(err)
	}
	if err := sub.Rmdir("/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := sub.StatFS(); err != nil {
		t.Fatal(err)
	}
}

// A subtree view cannot escape its prefix, even with "..".
func TestSubtreeConfinement(t *testing.T) {
	base := newLocal(t)
	if err := WriteFile(base, "/secret", []byte("outside"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := MkdirAll(base, "/vol", 0o755); err != nil {
		t.Fatal(err)
	}
	sub, err := Subtree(base, "/vol")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"/../secret", "/a/../../secret"} {
		if _, err := sub.Stat(p); AsErrno(err) != ENOENT {
			t.Errorf("escape via %q = %v, want ENOENT (clamped inside /vol)", p, err)
		}
	}
	// Bare ".." clamps to the subtree root itself, not the parent.
	fi, err := sub.Stat("/..")
	if err != nil || !fi.IsDir {
		t.Errorf("stat /.. = %+v, %v; want the subtree root dir", fi, err)
	}
}

func TestSubtreeOfSubtree(t *testing.T) {
	base := newLocal(t)
	if err := MkdirAll(base, "/a/b/c", 0o755); err != nil {
		t.Fatal(err)
	}
	s1, _ := Subtree(base, "/a")
	s2, err := Subtree(s1, "/b")
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(s2, "/c/f", []byte("nested"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := ReadFile(base, "/a/b/c/f")
	if err != nil || string(data) != "nested" {
		t.Fatalf("nested subtree: %q, %v", data, err)
	}
}

func TestSubtreeFastPaths(t *testing.T) {
	base := newLocal(t)
	if err := MkdirAll(base, "/vol", 0o755); err != nil {
		t.Fatal(err)
	}
	sub, _ := Subtree(base, "/vol")
	payload := bytes.Repeat([]byte("x"), 1000)
	if err := WriteFile(sub, "/f", payload, 0o644); err != nil {
		t.Fatal(err)
	}
	// GetFile fallback path (local fs is not a FileGetter).
	var buf bytes.Buffer
	n, err := sub.GetFile("/f", &buf)
	if err != nil || n != 1000 || !bytes.Equal(buf.Bytes(), payload) {
		t.Fatalf("GetFile = %d, %v", n, err)
	}
	// OpenStat fallback path.
	f, fi, err := sub.OpenStat("/f", O_RDONLY, 0)
	if err != nil || fi.Size != 1000 {
		t.Fatalf("OpenStat = %+v, %v", fi, err)
	}
	f.Close()
	// GetWholeFile helper prefers the fast path when available.
	data, err := GetWholeFile(sub, "/f")
	if err != nil || len(data) != 1000 {
		t.Fatalf("GetWholeFile = %d, %v", len(data), err)
	}
}

func TestSubtreeRootPrefix(t *testing.T) {
	base := newLocal(t)
	sub, err := Subtree(base, "/")
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(sub, "/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if !Exists(base, "/f") {
		t.Error("root subtree did not pass through")
	}
}
