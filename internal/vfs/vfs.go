// Package vfs defines the Unix-like filesystem interface that every
// layer of the tactical storage system exports and consumes.
//
// This single interface is the paper's "recursive storage abstraction"
// (§3) made literal: the local filesystem under a Chirp server, the
// Chirp client that talks to it, every abstraction built from multiple
// servers (CFS, DPFS, DSFS), and the adapter that applications use all
// implement FileSystem. Because the interface recurs at every layer,
// any abstraction can be stacked on any other.
package vfs

import (
	"bytes"
	"io"
	"os"
	"time"
)

// Open flags, defined independently of the host platform because they
// travel over the wire. The access mode occupies the low two bits.
const (
	O_RDONLY = 0x0
	O_WRONLY = 0x1
	O_RDWR   = 0x2

	O_CREAT  = 0x40
	O_EXCL   = 0x80
	O_TRUNC  = 0x200
	O_APPEND = 0x400
	O_SYNC   = 0x1000

	// AccessModeMask extracts the access mode from a flag word.
	AccessModeMask = 0x3
)

// FileInfo describes a file or directory. It is the portable subset of
// a Unix stat structure that the Chirp protocol carries.
type FileInfo struct {
	Name  string // final path component
	Size  int64  // length in bytes
	Mode  uint32 // permission bits (no type bits)
	MTime int64  // modification time, Unix seconds
	Inode uint64 // identity within one server; used for ESTALE checks
	IsDir bool
}

// ModTime returns the modification time as a time.Time.
func (fi FileInfo) ModTime() time.Time { return time.Unix(fi.MTime, 0) }

// DirEntry is one directory listing entry.
type DirEntry struct {
	Name  string
	IsDir bool
}

// FSInfo describes the capacity of a filesystem, as reported by statfs
// and published to catalogs.
type FSInfo struct {
	TotalBytes int64
	FreeBytes  int64
}

// File is an open file. I/O is positional (pread/pwrite with explicit
// offsets), matching the Chirp protocol: the client, not the server,
// owns the notion of a current offset.
type File interface {
	// Pread reads up to len(p) bytes at offset off. It returns the
	// number of bytes read; n == 0 with nil error means end of file.
	Pread(p []byte, off int64) (n int, err error)
	// Pwrite writes len(p) bytes at offset off.
	Pwrite(p []byte, off int64) (n int, err error)
	// Fstat returns metadata for the open file.
	Fstat() (FileInfo, error)
	// Ftruncate changes the file length.
	Ftruncate(size int64) error
	// Sync flushes written data to stable storage.
	Sync() error
	// Close releases the descriptor.
	Close() error
}

// OSFiler is the optional escape hatch from a File to the host
// *os.File backing it. The Chirp server probes it on the bulk-data
// path: when both the transport is a raw TCP connection and the file
// is host-backed, getfile/putfile stream with io.Copy directly between
// the two, letting the runtime use sendfile/splice instead of chunking
// through protocol buffers. Wrappers that intercept I/O (fault
// injectors, instrumentation) simply do not implement it and keep the
// buffered path.
type OSFiler interface {
	OSFile() *os.File
}

// FileSystem is the recursive abstraction interface. All paths are
// absolute, slash-separated, and interpreted within the filesystem's
// own namespace.
type FileSystem interface {
	Open(path string, flags int, mode uint32) (File, error)
	Stat(path string) (FileInfo, error)
	Unlink(path string) error
	Rename(oldPath, newPath string) error
	Mkdir(path string, mode uint32) error
	Rmdir(path string) error
	ReadDir(path string) ([]DirEntry, error)
	Truncate(path string, size int64) error
	Chmod(path string, mode uint32) error
	StatFS() (FSInfo, error)
}

// Closer is implemented by filesystems that hold external resources
// (network connections); callers should close them when done.
type Closer interface {
	Close() error
}

// Reconnector is implemented by network-backed filesystems that can
// re-establish a lost connection. The adapter uses it to drive the
// recovery protocol of §6.
type Reconnector interface {
	Reconnect() error
}

// OpenStater is the optional open fast path: open and stat in one
// round trip, as the Chirp open response carries a stat line. The
// adapter uses it to record the inode for ESTALE detection without an
// extra RPC.
type OpenStater interface {
	OpenStat(path string, flags int, mode uint32) (File, FileInfo, error)
}

// FileGetter is the optional whole-file fetch fast path, matching the
// Chirp getfile RPC: one round trip regardless of size. Layers that
// read small whole files (DSFS stub resolution) use it when available,
// which is what keeps DSFS metadata operations at twice — not many
// times — the latency of CFS (Figure 4).
type FileGetter interface {
	GetFile(path string, w io.Writer) (int64, error)
}

// FilePutter is the optional whole-file store fast path, symmetric
// with FileGetter and matching the Chirp putfile RPC: the file is
// created (or replaced) and written in one round trip regardless of
// size. size is the exact number of bytes that will be read from r.
type FilePutter interface {
	PutFile(path string, mode uint32, size int64, r io.Reader) error
}

// PartGetter is the optional offset-addressed bulk read capability,
// matching the Chirp getpart RPC: stream up to length bytes at offset
// off of the named file into w, in one round trip. Parts are addressed
// by path, not descriptor, so concurrent part reads can travel on
// different pooled connections; the multipart engine (Copy) fans chunk
// reads across them. With a non-empty algo the transfer carries a
// digest trailer the receiving side verifies; GetPart returns the
// bytes written and that chunk digest (lowercase hex, "" when algo is
// empty).
type PartGetter interface {
	GetPart(path string, off, length int64, algo string, w io.Writer) (int64, string, error)
}

// PartPutter is the optional offset-addressed bulk write capability,
// the put side of the multipart protocol (Chirp putbegin / putpart /
// putcomplete). PutBegin creates the destination at its final path and
// full size; PutPart stores length bytes from r at offset off (with a
// non-empty algo the chunk carries a digest trailer the receiver
// verifies, answering an integrity error without touching other
// chunks, so a failed chunk retries independently); PutComplete checks
// the assembled file — its size, and with a non-empty algo its whole-
// file digest against sum — and removes it on mismatch, so a torn
// multipart transfer never survives at rest.
type PartPutter interface {
	PutBegin(path string, mode uint32, size int64) error
	PutPart(path string, off, length int64, algo string, r io.Reader) (string, error)
	PutComplete(path string, size int64, algo, sum string) error
}

// Lease is a server-granted read lease on one path: a promise that the
// holder may serve cached data for the path without revalidation until
// TTL elapses or the server observes a conflicting write. Version is
// the server's change counter for the path at grant time; a renewal
// that returns the same version proves the cached data is still
// current, and a changed version tells the holder to drop it.
type Lease struct {
	// ID names the lease for LeaseBreak; unique per server.
	ID int64
	// Version is the path's change counter at grant time.
	Version int64
	// TTL bounds how long the holder may trust the lease.
	TTL time.Duration
}

// Leaser is the optional read-lease capability, matching the Chirp
// lease/leasebreak RPCs. Lease grants a read lease on path; LeaseBreak
// releases a previously granted lease early (the holder is done with
// it). The caching tier (cache.FS) uses renewals as cheap
// revalidation: one small RPC covers every cached attribute, dirent,
// and page of the path.
type Leaser interface {
	Lease(path string) (Lease, error)
	LeaseBreak(id int64) error
}

// Capability collects the optional fast paths and lifecycle hooks a
// filesystem offers beyond the core FileSystem interface. Each field is
// nil when the capability is unavailable. Callers obtain one through
// Capabilities rather than by ad-hoc type assertion, so that layered
// filesystems can forward the capabilities of the stack they wrap.
type Capability struct {
	// OpenStater opens and stats in one round trip.
	OpenStater OpenStater
	// FileGetter fetches a whole file in one round trip.
	FileGetter FileGetter
	// FilePutter stores a whole file in one round trip.
	FilePutter FilePutter
	// PartGetter reads offset-addressed file parts for multipart
	// transfers.
	PartGetter PartGetter
	// PartPutter writes offset-addressed file parts with begin/complete
	// framing.
	PartPutter PartPutter
	// Checksummer digests a whole file where the data lives.
	Checksummer Checksummer
	// Leaser grants and releases read leases for client caching.
	Leaser Leaser
	// Reconnector re-establishes a lost transport connection.
	Reconnector Reconnector
	// Closer releases external resources held by the filesystem.
	Closer Closer
}

// Capabler is implemented by layered filesystems — instrumentation,
// subtree views, fault injectors — that wrap another filesystem and
// want to report (and decorate) the wrapped layer's capabilities
// instead of their own method set. A wrapper that merely embeds its
// inner filesystem would otherwise silently drop fast paths like
// getfile, doubling the round trips of every stub read (Figure 4).
type Capabler interface {
	Capabilities() Capability
}

// Capabilities probes fs for its optional capabilities. A filesystem
// that implements Capabler answers for itself (typically by forwarding
// its inner layer's capabilities); otherwise each capability is
// discovered by interface assertion. This is the single sanctioned way
// to reach an optional interface — the probe result is authoritative
// even when the concrete type would also satisfy the assertion.
func Capabilities(fs FileSystem) Capability {
	if c, ok := fs.(Capabler); ok {
		return c.Capabilities()
	}
	var caps Capability
	caps.OpenStater, _ = fs.(OpenStater)
	caps.FileGetter, _ = fs.(FileGetter)
	caps.FilePutter, _ = fs.(FilePutter)
	caps.PartGetter, _ = fs.(PartGetter)
	caps.PartPutter, _ = fs.(PartPutter)
	caps.Checksummer, _ = fs.(Checksummer)
	caps.Leaser, _ = fs.(Leaser)
	caps.Reconnector, _ = fs.(Reconnector)
	caps.Closer, _ = fs.(Closer)
	return caps
}

// GetWholeFile reads an entire file, using the FileGetter fast path
// when fs provides it and open/pread/close otherwise.
//
// Deprecated: transfer call sites should go through Copy, the unified
// entrypoint that picks the best strategy (single-shot, streaming, or
// parallel multipart) from the capability probe. The tsslint copyapi
// check flags direct use outside package vfs; small metadata reads that
// genuinely want a byte slice may suppress it with a reason.
func GetWholeFile(fs FileSystem, path string) ([]byte, error) {
	if g := Capabilities(fs).FileGetter; g != nil {
		var buf bytes.Buffer
		if _, err := g.GetFile(path, &buf); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	return ReadFile(fs, path)
}

// PutReader stores exactly size bytes from r as the named file, using
// the FilePutter one-round-trip fast path when fs provides it and
// open/pwrite/close otherwise.
//
// Deprecated: transfer call sites should go through Copy or PutBytes,
// the unified entrypoints that pick the best strategy (single-shot,
// streaming, or parallel multipart) from the capability probe. The
// tsslint copyapi check flags direct use outside package vfs.
func PutReader(fs FileSystem, path string, mode uint32, size int64, r io.Reader) error {
	if p := Capabilities(fs).FilePutter; p != nil {
		return p.PutFile(path, mode, size, r)
	}
	f, err := fs.Open(path, O_WRONLY|O_CREAT|O_TRUNC, mode)
	if err != nil {
		return err
	}
	buf := make([]byte, 256<<10)
	var off int64
	for off < size {
		want := int64(len(buf))
		if size-off < want {
			want = size - off
		}
		if _, err := io.ReadFull(r, buf[:want]); err != nil {
			f.Close()
			return err
		}
		if err := WriteAll(f, buf[:want], off); err != nil {
			f.Close()
			return err
		}
		off += want
	}
	return f.Close()
}
