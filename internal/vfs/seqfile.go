package vfs

import "io"

// SeqFile adapts a positional File to the sequential io.Reader /
// io.Writer / io.Seeker interfaces, maintaining the current offset on
// the client side — exactly the division of labor the Chirp protocol
// prescribes (§4: "the client is responsible for maintaining state
// such as the current file descriptor position").
type SeqFile struct {
	f   File
	off int64
}

var (
	_ io.ReadWriteSeeker = (*SeqFile)(nil)
	_ io.Closer          = (*SeqFile)(nil)
)

// NewSeqFile wraps f with a client-side offset starting at zero.
func NewSeqFile(f File) *SeqFile { return &SeqFile{f: f} }

// Read reads from the current offset; returns io.EOF at end of file.
func (s *SeqFile) Read(p []byte) (int, error) {
	n, err := s.f.Pread(p, s.off)
	s.off += int64(n)
	if err != nil {
		return n, err
	}
	if n == 0 && len(p) > 0 {
		return 0, io.EOF
	}
	return n, nil
}

// Write writes at the current offset.
func (s *SeqFile) Write(p []byte) (int, error) {
	n, err := s.f.Pwrite(p, s.off)
	s.off += int64(n)
	return n, err
}

// Seek repositions the offset.
func (s *SeqFile) Seek(offset int64, whence int) (int64, error) {
	switch whence {
	case io.SeekStart:
		s.off = offset
	case io.SeekCurrent:
		s.off += offset
	case io.SeekEnd:
		fi, err := s.f.Fstat()
		if err != nil {
			return s.off, err
		}
		s.off = fi.Size + offset
	default:
		return s.off, EINVAL
	}
	if s.off < 0 {
		s.off = 0
		return 0, EINVAL
	}
	return s.off, nil
}

// Offset returns the current offset.
func (s *SeqFile) Offset() int64 { return s.off }

// File returns the underlying positional file.
func (s *SeqFile) File() File { return s.f }

// Close closes the underlying file.
func (s *SeqFile) Close() error { return s.f.Close() }
