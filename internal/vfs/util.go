package vfs

import "io"

// ReadFile reads the entire named file through fs.
func ReadFile(fs FileSystem, path string) ([]byte, error) {
	f, err := fs.Open(path, O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []byte
	buf := make([]byte, 64<<10)
	var off int64
	for {
		n, err := f.Pread(buf, off)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return out, nil
		}
		out = append(out, buf[:n]...)
		off += int64(n)
	}
}

// WriteFile creates or replaces the named file with data.
func WriteFile(fs FileSystem, path string, data []byte, mode uint32) error {
	f, err := fs.Open(path, O_WRONLY|O_CREAT|O_TRUNC, mode)
	if err != nil {
		return err
	}
	var off int64
	for len(data) > 0 {
		n, err := f.Pwrite(data, off)
		if err != nil {
			f.Close()
			return err
		}
		data = data[n:]
		off += int64(n)
	}
	return f.Close()
}

// CopyFile streams the file at srcPath on src to dstPath on dst using
// blockSize transfers, returning the number of bytes copied.
func CopyFile(dst FileSystem, dstPath string, src FileSystem, srcPath string, blockSize int) (int64, error) {
	if blockSize <= 0 {
		blockSize = 64 << 10
	}
	in, err := src.Open(srcPath, O_RDONLY, 0)
	if err != nil {
		return 0, err
	}
	defer in.Close()
	out, err := dst.Open(dstPath, O_WRONLY|O_CREAT|O_TRUNC, 0o644)
	if err != nil {
		return 0, err
	}
	buf := make([]byte, blockSize)
	var off int64
	for {
		n, err := in.Pread(buf, off)
		if err != nil {
			out.Close()
			return off, err
		}
		if n == 0 {
			break
		}
		w := buf[:n]
		woff := off
		for len(w) > 0 {
			m, err := out.Pwrite(w, woff)
			if err != nil {
				out.Close()
				return woff, err
			}
			w = w[m:]
			woff += int64(m)
		}
		off += int64(n)
	}
	return off, out.Close()
}

// Exists reports whether the named path exists on fs.
func Exists(fs FileSystem, path string) bool {
	_, err := fs.Stat(path)
	return err == nil
}

// WriteAll writes all of p at off, looping over short writes.
func WriteAll(f File, p []byte, off int64) error {
	for len(p) > 0 {
		n, err := f.Pwrite(p, off)
		if err != nil {
			return err
		}
		p = p[n:]
		off += int64(n)
	}
	return nil
}

// ReadFull reads exactly len(p) bytes at off, or returns an error.
// Premature end of file yields io.ErrUnexpectedEOF.
func ReadFull(f File, p []byte, off int64) error {
	for len(p) > 0 {
		n, err := f.Pread(p, off)
		if err != nil {
			return err
		}
		if n == 0 {
			return io.ErrUnexpectedEOF
		}
		p = p[n:]
		off += int64(n)
	}
	return nil
}
