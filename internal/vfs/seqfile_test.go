package vfs

import (
	"io"
	"strings"
	"testing"
)

func seqFixture(t *testing.T) *SeqFile {
	t.Helper()
	l := newLocal(t)
	if err := WriteFile(l, "/f", []byte("0123456789"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := l.Open("/f", O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	sf := NewSeqFile(f)
	t.Cleanup(func() { sf.Close() })
	return sf
}

func TestSeqFileReadAdvances(t *testing.T) {
	sf := seqFixture(t)
	buf := make([]byte, 4)
	n, err := sf.Read(buf)
	if err != nil || n != 4 || string(buf) != "0123" {
		t.Fatalf("first read = %q, %d, %v", buf, n, err)
	}
	n, err = sf.Read(buf)
	if err != nil || string(buf[:n]) != "4567" {
		t.Fatalf("second read = %q, %v", buf[:n], err)
	}
	if sf.Offset() != 8 {
		t.Errorf("offset = %d", sf.Offset())
	}
}

func TestSeqFileEOF(t *testing.T) {
	sf := seqFixture(t)
	if _, err := sf.Seek(10, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := sf.Read(buf); err != io.EOF {
		t.Errorf("read at end = %v, want io.EOF", err)
	}
	// io.ReadAll style consumption works.
	sf.Seek(0, io.SeekStart)
	data, err := io.ReadAll(sf)
	if err != nil || string(data) != "0123456789" {
		t.Fatalf("ReadAll = %q, %v", data, err)
	}
}

func TestSeqFileSeekWhence(t *testing.T) {
	sf := seqFixture(t)
	if off, err := sf.Seek(2, io.SeekStart); err != nil || off != 2 {
		t.Errorf("SeekStart = %d, %v", off, err)
	}
	if off, err := sf.Seek(3, io.SeekCurrent); err != nil || off != 5 {
		t.Errorf("SeekCurrent = %d, %v", off, err)
	}
	if off, err := sf.Seek(-2, io.SeekEnd); err != nil || off != 8 {
		t.Errorf("SeekEnd = %d, %v", off, err)
	}
	if _, err := sf.Seek(0, 99); err == nil {
		t.Error("bad whence accepted")
	}
	if _, err := sf.Seek(-100, io.SeekStart); err == nil {
		t.Error("negative seek accepted")
	}
}

func TestSeqFileWriteAppendsSequentially(t *testing.T) {
	sf := seqFixture(t)
	sf.Seek(0, io.SeekEnd)
	if _, err := io.Copy(sf, strings.NewReader("abc")); err != nil {
		t.Fatal(err)
	}
	sf.Seek(0, io.SeekStart)
	data, _ := io.ReadAll(sf)
	if string(data) != "0123456789abc" {
		t.Errorf("after append = %q", data)
	}
	if sf.File() == nil {
		t.Error("File() accessor nil")
	}
}
