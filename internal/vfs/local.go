package vfs

import (
	"encoding/hex"
	"errors"
	"io"
	"io/fs"
	"os"
	"syscall"

	"tss/internal/pathutil"
)

// LocalFS exports a directory of the host filesystem through the
// FileSystem interface, confining every operation beneath its root
// (the software chroot of §4). It is the resource that a Chirp server
// serves, and doubles as the private metadata store of a DPFS.
type LocalFS struct {
	root string
}

// NewLocalFS returns a LocalFS rooted at the host directory root, which
// must already exist.
func NewLocalFS(root string) (*LocalFS, error) {
	st, err := os.Stat(root)
	if err != nil {
		return nil, AsErrno(err)
	}
	if !st.IsDir() {
		return nil, ENOTDIR
	}
	return &LocalFS{root: root}, nil
}

// Root returns the host directory this filesystem is confined to.
func (l *LocalFS) Root() string { return l.root }

// HostPath maps a logical path to the confined host path.
func (l *LocalFS) HostPath(path string) (string, error) {
	hp, err := pathutil.Confine(l.root, path)
	if err != nil {
		return "", EINVAL
	}
	return hp, nil
}

func osFlags(flags int) int {
	of := 0
	switch flags & AccessModeMask {
	case O_RDONLY:
		of = os.O_RDONLY
	case O_WRONLY:
		of = os.O_WRONLY
	case O_RDWR:
		of = os.O_RDWR
	}
	if flags&O_CREAT != 0 {
		of |= os.O_CREATE
	}
	if flags&O_EXCL != 0 {
		of |= os.O_EXCL
	}
	if flags&O_TRUNC != 0 {
		of |= os.O_TRUNC
	}
	if flags&O_APPEND != 0 {
		of |= os.O_APPEND
	}
	if flags&O_SYNC != 0 {
		of |= os.O_SYNC
	}
	return of
}

func fileInfoOf(name string, st fs.FileInfo) FileInfo {
	fi := FileInfo{
		Name:  name,
		Size:  st.Size(),
		Mode:  uint32(st.Mode().Perm()),
		MTime: st.ModTime().Unix(),
		IsDir: st.IsDir(),
	}
	if sys, ok := st.Sys().(*syscall.Stat_t); ok {
		fi.Inode = sys.Ino
	}
	return fi
}

// Open opens or creates a file beneath the root.
func (l *LocalFS) Open(path string, flags int, mode uint32) (File, error) {
	hp, err := l.HostPath(path)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(hp, osFlags(flags), os.FileMode(mode))
	if err != nil {
		return nil, AsErrno(err)
	}
	st, err := f.Stat()
	if err == nil && st.IsDir() {
		f.Close()
		return nil, EISDIR
	}
	return &localFile{f: f, name: pathutil.Base(path), append: flags&O_APPEND != 0}, nil
}

// Stat returns metadata for the named file.
func (l *LocalFS) Stat(path string) (FileInfo, error) {
	hp, err := l.HostPath(path)
	if err != nil {
		return FileInfo{}, err
	}
	st, err := os.Stat(hp)
	if err != nil {
		return FileInfo{}, AsErrno(err)
	}
	return fileInfoOf(pathutil.Base(path), st), nil
}

// Unlink removes a file. Removing a directory yields EISDIR.
func (l *LocalFS) Unlink(path string) error {
	hp, err := l.HostPath(path)
	if err != nil {
		return err
	}
	st, err := os.Lstat(hp)
	if err != nil {
		return AsErrno(err)
	}
	if st.IsDir() {
		return EISDIR
	}
	if err := os.Remove(hp); err != nil {
		return AsErrno(err)
	}
	return nil
}

// Rename atomically renames a file or directory within the filesystem.
func (l *LocalFS) Rename(oldPath, newPath string) error {
	ohp, err := l.HostPath(oldPath)
	if err != nil {
		return err
	}
	nhp, err := l.HostPath(newPath)
	if err != nil {
		return err
	}
	if err := os.Rename(ohp, nhp); err != nil {
		return AsErrno(err)
	}
	return nil
}

// Mkdir creates a directory.
func (l *LocalFS) Mkdir(path string, mode uint32) error {
	hp, err := l.HostPath(path)
	if err != nil {
		return err
	}
	if err := os.Mkdir(hp, os.FileMode(mode)); err != nil {
		return AsErrno(err)
	}
	return nil
}

// Rmdir removes an empty directory.
func (l *LocalFS) Rmdir(path string) error {
	hp, err := l.HostPath(path)
	if err != nil {
		return err
	}
	st, err := os.Lstat(hp)
	if err != nil {
		return AsErrno(err)
	}
	if !st.IsDir() {
		return ENOTDIR
	}
	if err := os.Remove(hp); err != nil {
		return AsErrno(err)
	}
	return nil
}

// ReadDir lists a directory.
func (l *LocalFS) ReadDir(path string) ([]DirEntry, error) {
	hp, err := l.HostPath(path)
	if err != nil {
		return nil, err
	}
	ents, err := os.ReadDir(hp)
	if err != nil {
		return nil, AsErrno(err)
	}
	out := make([]DirEntry, 0, len(ents))
	for _, e := range ents {
		out = append(out, DirEntry{Name: e.Name(), IsDir: e.IsDir()})
	}
	return out, nil
}

// Truncate changes the length of the named file.
func (l *LocalFS) Truncate(path string, size int64) error {
	hp, err := l.HostPath(path)
	if err != nil {
		return err
	}
	if err := os.Truncate(hp, size); err != nil {
		return AsErrno(err)
	}
	return nil
}

// Chmod changes permission bits of the named file.
func (l *LocalFS) Chmod(path string, mode uint32) error {
	hp, err := l.HostPath(path)
	if err != nil {
		return err
	}
	if err := os.Chmod(hp, os.FileMode(mode)); err != nil {
		return AsErrno(err)
	}
	return nil
}

// Checksum streams the named host file through the requested digest,
// never materializing it in memory (vfs.Checksummer). A directory
// yields EISDIR to match Open.
func (l *LocalFS) Checksum(path, algo string) (string, error) {
	h, err := NewHash(algo)
	if err != nil {
		return "", err
	}
	hp, err := l.HostPath(path)
	if err != nil {
		return "", err
	}
	f, err := os.Open(hp)
	if err != nil {
		return "", AsErrno(err)
	}
	defer f.Close()
	if st, err := f.Stat(); err == nil && st.IsDir() {
		return "", EISDIR
	}
	if _, err := io.Copy(h, f); err != nil {
		return "", AsErrno(err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// StatFS reports host filesystem capacity for the volume holding root.
func (l *LocalFS) StatFS() (FSInfo, error) {
	var st syscall.Statfs_t
	if err := syscall.Statfs(l.root, &st); err != nil {
		return FSInfo{}, AsErrno(err)
	}
	bs := int64(st.Bsize)
	return FSInfo{
		TotalBytes: int64(st.Blocks) * bs,
		FreeBytes:  int64(st.Bavail) * bs,
	}, nil
}

type localFile struct {
	f      *os.File
	name   string
	append bool
}

func (lf *localFile) Pread(p []byte, off int64) (int, error) {
	n, err := lf.f.ReadAt(p, off)
	if err != nil && !errors.Is(err, io.EOF) {
		return n, AsErrno(err)
	}
	// A short read at end of file is not an error in the Chirp model:
	// n == 0 signals EOF.
	return n, nil
}

func (lf *localFile) Pwrite(p []byte, off int64) (int, error) {
	// pwrite on a file opened with O_APPEND appends regardless of the
	// offset (POSIX/Linux semantics); Go's WriteAt refuses it, so use
	// the sequential writer, which the kernel positions at EOF.
	if lf.append {
		n, err := lf.f.Write(p)
		if err != nil {
			return n, AsErrno(err)
		}
		return n, nil
	}
	n, err := lf.f.WriteAt(p, off)
	if err != nil {
		return n, AsErrno(err)
	}
	return n, nil
}

func (lf *localFile) Fstat() (FileInfo, error) {
	st, err := lf.f.Stat()
	if err != nil {
		return FileInfo{}, AsErrno(err)
	}
	return fileInfoOf(lf.name, st), nil
}

func (lf *localFile) Ftruncate(size int64) error {
	if err := lf.f.Truncate(size); err != nil {
		return AsErrno(err)
	}
	return nil
}

func (lf *localFile) Sync() error {
	if err := lf.f.Sync(); err != nil {
		return AsErrno(err)
	}
	return nil
}

// OSFile exposes the host file for the server's bulk-data fast path
// (vfs.OSFiler): positional I/O elsewhere in localFile never moves the
// descriptor's offset, so sequential streaming from offset zero is safe
// on a freshly opened file.
func (lf *localFile) OSFile() *os.File { return lf.f }

func (lf *localFile) Close() error {
	if err := lf.f.Close(); err != nil {
		return AsErrno(err)
	}
	return nil
}
