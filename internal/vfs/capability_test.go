package vfs

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestCapabilitiesFallbackProbesInterfaces(t *testing.T) {
	lfs := newLocal(t)
	caps := Capabilities(lfs)
	if caps.OpenStater != nil || caps.FileGetter != nil || caps.FilePutter != nil ||
		caps.Reconnector != nil || caps.Closer != nil {
		t.Errorf("LocalFS advertises capabilities it does not implement: %+v", caps)
	}
}

// capFS exercises the Capabler override: it reports a FileGetter even
// though the concrete type would not assert to one, and hides a
// Reconnector it does implement.
type capFS struct {
	FileSystem
	getter FileGetter
}

func (c capFS) Reconnect() error { return nil }

func (c capFS) Capabilities() Capability {
	return Capability{FileGetter: c.getter}
}

type stringGetter string

func (s stringGetter) GetFile(path string, w io.Writer) (int64, error) {
	n, err := io.WriteString(w, string(s))
	return int64(n), err
}

func TestCapablerOverridesAssertions(t *testing.T) {
	fs := capFS{FileSystem: newLocal(t), getter: stringGetter("fast")}
	caps := Capabilities(fs)
	if caps.FileGetter == nil {
		t.Fatal("Capabler-reported FileGetter not honored")
	}
	if caps.Reconnector != nil {
		t.Fatal("Capabler answer must be authoritative: hidden Reconnector leaked")
	}
	data, err := GetWholeFile(fs, "/whatever")
	if err != nil || string(data) != "fast" {
		t.Fatalf("GetWholeFile = (%q, %v), want fast path", data, err)
	}
}

// putterFS counts fast-path stores.
type putterFS struct {
	FileSystem
	puts int
}

func (p *putterFS) PutFile(path string, mode uint32, size int64, r io.Reader) error {
	p.puts++
	data := make([]byte, size)
	if _, err := io.ReadFull(r, data); err != nil {
		return err
	}
	return WriteFile(p.FileSystem, path, data, mode)
}

func TestPutReaderFastPath(t *testing.T) {
	p := &putterFS{FileSystem: newLocal(t)}
	body := strings.Repeat("payload ", 100)
	if err := PutReader(p, "/f", 0o644, int64(len(body)), strings.NewReader(body)); err != nil {
		t.Fatal(err)
	}
	if p.puts != 1 {
		t.Errorf("fast path used %d times, want 1", p.puts)
	}
	got, err := ReadFile(p.FileSystem, "/f")
	if err != nil || string(got) != body {
		t.Fatalf("stored %q, want %q (err %v)", got, body, err)
	}
}

func TestPutReaderFallback(t *testing.T) {
	lfs := newLocal(t)
	// Larger than the internal 256 KiB copy buffer to cover the loop.
	body := bytes.Repeat([]byte("0123456789abcdef"), 20<<10) // 320 KiB
	if err := PutReader(lfs, "/big", 0o644, int64(len(body)), bytes.NewReader(body)); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(lfs, "/big")
	if err != nil || !bytes.Equal(got, body) {
		t.Fatalf("fallback stored %d bytes, want %d (err %v)", len(got), len(body), err)
	}
	// Short reader: the promised size cannot be satisfied.
	if err := PutReader(lfs, "/short", 0o644, 100, strings.NewReader("x")); err == nil {
		t.Fatal("short reader must fail")
	}
}

func TestSubtreeForwardsInnerCapabilities(t *testing.T) {
	p := &putterFS{FileSystem: newLocal(t)}
	if err := MkdirAll(p.FileSystem, "/vol", 0o755); err != nil {
		t.Fatal(err)
	}
	view, err := Subtree(p, "/vol")
	if err != nil {
		t.Fatal(err)
	}
	caps := Capabilities(view)
	if caps.FilePutter == nil {
		t.Fatal("subtree must forward the inner FilePutter")
	}
	if caps.Reconnector != nil || caps.Closer != nil {
		t.Fatal("subtree must not invent capabilities the inner FS lacks")
	}
	body := "through the view"
	if err := PutReader(view, "/f", 0o644, int64(len(body)), strings.NewReader(body)); err != nil {
		t.Fatal(err)
	}
	if p.puts != 1 {
		t.Errorf("fast path used %d times through subtree, want 1", p.puts)
	}
	// The path was translated into the subtree.
	got, err := ReadFile(p.FileSystem, "/vol/f")
	if err != nil || string(got) != body {
		t.Fatalf("stored at %q = %q, want %q (err %v)", "/vol/f", got, body, err)
	}
}
