package vfs

import (
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
)

// CRC-32C composition. A CRC is a linear function over GF(2), so the
// digest of a concatenation A||B can be computed from CRC(A), CRC(B)
// and len(B) alone — no byte of either part is needed. This is what
// lets the multipart transfer engine verify a whole file from the
// per-chunk digest trailers it already collected: chunks are hashed
// independently (in any order, on any connection), then folded together
// in offset order into the digest a single-stream transfer would have
// produced. SHA-256 has no such composition law, which is why multipart
// verification is pinned to crc32c.
//
// The algorithm is the classic zlib crc32_combine: appending one zero
// bit to A's stream is a linear operator on the 32-bit CRC register,
// representable as a 32×32 matrix over GF(2); appending len(B) zero
// bytes is that operator raised to the 8·len(B)-th power, computed in
// O(log len) by repeated squaring.

// crc32cPoly is the reflected Castagnoli polynomial, matching
// crc32.Castagnoli's bit order.
const crc32cPoly = 0x82F63B78

// gf2Times multiplies the matrix by a vector over GF(2): XOR of the
// rows selected by vec's set bits.
func gf2Times(mat *[32]uint32, vec uint32) uint32 {
	var sum uint32
	for i := 0; vec != 0; i++ {
		if vec&1 != 0 {
			sum ^= mat[i]
		}
		vec >>= 1
	}
	return sum
}

// gf2Square sets square = mat², column by column.
func gf2Square(square, mat *[32]uint32) {
	for n := range mat {
		square[n] = gf2Times(mat, mat[n])
	}
}

// CombineCRC32C returns the CRC-32C of A||B given crc1 = CRC-32C(A),
// crc2 = CRC-32C(B), and len2 = len(B).
func CombineCRC32C(crc1, crc2 uint32, len2 int64) uint32 {
	if len2 <= 0 {
		return crc1
	}
	var even, odd [32]uint32
	// odd is the operator for one appended zero bit: the register
	// shifts right, feeding the polynomial back on a carry-out.
	odd[0] = crc32cPoly
	row := uint32(1)
	for n := 1; n < 32; n++ {
		odd[n] = row
		row <<= 1
	}
	gf2Square(&even, &odd) // two zero bits
	gf2Square(&odd, &even) // four zero bits
	// Apply the operator for 8·len2 zero bits by repeated squaring,
	// consuming one bit of len2 per squaring (starting at 8 = 2³ bits,
	// hence the three squarings above).
	for {
		gf2Square(&even, &odd)
		if len2&1 != 0 {
			crc1 = gf2Times(&even, crc1)
		}
		len2 >>= 1
		if len2 == 0 {
			break
		}
		gf2Square(&odd, &even)
		if len2&1 != 0 {
			crc1 = gf2Times(&odd, crc1)
		}
		len2 >>= 1
		if len2 == 0 {
			break
		}
	}
	return crc1 ^ crc2
}

// CRC32C returns the CRC-32C of p, continuing from crc (0 to start).
func CRC32C(crc uint32, p []byte) uint32 {
	return crc32.Update(crc, castagnoli, p)
}

// FormatCRC32C renders a CRC-32C register as the lowercase-hex digest
// string the wire trailers carry (big-endian, matching hash.Sum).
func FormatCRC32C(crc uint32) string {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], crc)
	return hex.EncodeToString(b[:])
}

// ParseCRC32C parses a crc32c hex digest back into the register value.
func ParseCRC32C(sum string) (uint32, error) {
	raw, err := hex.DecodeString(sum)
	if err != nil || len(raw) != 4 {
		return 0, fmt.Errorf("malformed crc32c digest %q: %w", sum, EINVAL)
	}
	return binary.BigEndian.Uint32(raw), nil
}
