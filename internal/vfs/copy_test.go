package vfs

import (
	"bytes"
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// copyFixture builds two LocalFS roots and a source file of the given
// size, returning the endpoints. LocalFS offers no whole-file or part
// fast paths, so these tests pin the engine's positional strategies;
// the chirp package tests pin the wire strategies.
func copyFixture(t *testing.T, size int) (dst, src Loc, data []byte) {
	t.Helper()
	srcDir, dstDir := t.TempDir(), t.TempDir()
	rng := rand.New(rand.NewSource(int64(size) + 1))
	data = make([]byte, size)
	rng.Read(data)
	if err := os.WriteFile(filepath.Join(srcDir, "src.bin"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	sfs, err := NewLocalFS(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	dfs, err := NewLocalFS(dstDir)
	if err != nil {
		t.Fatal(err)
	}
	return Loc{FS: dfs, Path: "/out.bin"}, Loc{FS: sfs, Path: "/src.bin"}, data
}

func checkCopied(t *testing.T, dst Loc, data []byte) {
	t.Helper()
	got, err := ReadFile(dst.FS, dst.Path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("copied %d bytes, want %d; content mismatch=%v",
			len(got), len(data), !bytes.Equal(got, data))
	}
}

func TestCopyEmptyFile(t *testing.T) {
	dst, src, data := copyFixture(t, 0)
	n, err := Copy(context.Background(), dst, src, CopyOptions{Concurrency: 4, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("copied = %d, want 0", n)
	}
	checkCopied(t, dst, data)
}

// TestCopyBelowCutover stays single-stream even with concurrency
// requested: below two chunks there is nothing to parallelize.
func TestCopyBelowCutover(t *testing.T) {
	dst, src, data := copyFixture(t, 10_000)
	n, err := Copy(context.Background(), dst, src,
		CopyOptions{Concurrency: 8, ChunkSize: 64 << 10, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(data)) {
		t.Errorf("copied = %d, want %d", n, len(data))
	}
	checkCopied(t, dst, data)
}

// TestCopyChunkBoundaries drives the multipart engine across the edge
// sizes that break naive chunk math: one byte around a chunk edge, an
// exact multiple of the chunk size, and a single-chunk-plus-tail.
func TestCopyChunkBoundaries(t *testing.T) {
	const chunk = 32 << 10
	for _, size := range []int{chunk*2 - 1, chunk * 2, chunk*2 + 1, chunk * 3, chunk*4 + 17} {
		dst, src, data := copyFixture(t, size)
		n, err := Copy(context.Background(), dst, src,
			CopyOptions{Concurrency: 4, ChunkSize: chunk, Verify: true})
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if n != int64(size) {
			t.Errorf("size %d: copied = %d", size, n)
		}
		checkCopied(t, dst, data)
	}
}

// TestCopyProgress asserts the progress stream is monotonic and lands
// exactly on the file size.
func TestCopyProgress(t *testing.T) {
	const chunk = 16 << 10
	dst, src, data := copyFixture(t, chunk*5+123)
	var last int64
	mono := true
	_, err := Copy(context.Background(), dst, src, CopyOptions{
		Concurrency: 3,
		ChunkSize:   chunk,
		Progress: func(copied, total int64) {
			if copied < last || total != int64(len(data)) {
				mono = false
			}
			last = copied
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !mono {
		t.Error("progress regressed or reported wrong total")
	}
	if last != int64(len(data)) {
		t.Errorf("final progress = %d, want %d", last, len(data))
	}
}

func TestCopyErrors(t *testing.T) {
	dst, src, _ := copyFixture(t, 10)
	if _, err := Copy(context.Background(), dst, Loc{FS: src.FS, Path: "/missing"},
		CopyOptions{}); AsErrno(err) != ENOENT {
		t.Errorf("missing source = %v, want ENOENT", err)
	}
	if _, err := Copy(context.Background(), dst, Loc{FS: src.FS, Path: "/"},
		CopyOptions{}); AsErrno(err) != EISDIR {
		t.Errorf("directory source = %v, want EISDIR", err)
	}
	if _, err := Copy(context.Background(), Loc{}, src, CopyOptions{}); AsErrno(err) != EINVAL {
		t.Errorf("nil destination = %v, want EINVAL", err)
	}
}

// TestPutBytes exercises the memory-fed strategy selection: single-shot
// below the cutover, multipart workers above it, both verified.
func TestPutBytes(t *testing.T) {
	const chunk = 16 << 10
	for _, size := range []int{0, 100, chunk * 2, chunk*3 + 7} {
		dst, _, _ := copyFixture(t, 0)
		rng := rand.New(rand.NewSource(int64(size)))
		data := make([]byte, size)
		rng.Read(data)
		err := PutBytes(context.Background(), dst, 0o600, data,
			CopyOptions{Concurrency: 4, ChunkSize: chunk, Verify: true})
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		checkCopied(t, dst, data)
	}
}

// TestCopyCanceledContext stops before moving bytes.
func TestCopyCanceledContext(t *testing.T) {
	dst, src, _ := copyFixture(t, 1000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Copy(ctx, dst, src, CopyOptions{}); err == nil {
		t.Error("copy with canceled context succeeded")
	}
}
