package vfs

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// The unified transfer entrypoint. Copy collapses the accreted transfer
// surface — FileGetter, FilePutter, PutReader, ad-hoc pread/pwrite
// loops — into one call that probes Capabilities on both sides and
// picks the best strategy itself:
//
//   - small files move in a single shot over the whole-file fast paths
//     (or a positional copy loop when neither side has one);
//   - files at or above CopyOptions.Cutover, with Concurrency > 1,
//     move as parallel multipart transfers: the file is split into
//     ChunkSize pieces and chunk reads/writes are dispatched
//     concurrently through the PartGetter/PartPutter capabilities —
//     which a chirp.Pool fans out across its pooled connections — or,
//     absent those, through concurrent positional I/O on open files.
//
// With Verify, every chunk carries a crc32c digest trailer verified by
// the receiving side, and the completion step checks a composed
// whole-file digest (CombineCRC32C), so a torn or corrupted multipart
// transfer is detected end to end and its partial destination state is
// removed — zero wrong bytes survive at rest.

// DefaultChunkSize is the multipart chunk size when CopyOptions leaves
// it zero. It matches the protocol's single-I/O bound so one chunk is
// one comfortable wire transfer.
const DefaultChunkSize = 8 << 20

// Loc names a file on a filesystem: one endpoint of a transfer.
type Loc struct {
	FS   FileSystem
	Path string
}

// Retryer runs an operation under a retry policy; resilient.Policy
// satisfies it. It is declared here (rather than importing the
// resilient package, which itself builds on vfs) so CopyOptions can
// carry a policy without an import cycle.
type Retryer interface {
	Do(op func() error, prepare func() error, retryable func(error) bool) (err error, exhausted bool)
}

// CopyOptions tunes a Copy. The zero value is a safe single-stream,
// unverified transfer.
type CopyOptions struct {
	// Concurrency is the number of parallel chunk workers for multipart
	// transfers (<= 1 disables multipart).
	Concurrency int
	// ChunkSize is the multipart chunk size (default DefaultChunkSize).
	ChunkSize int64
	// Cutover is the file size at or above which a transfer goes
	// multipart (default 2*ChunkSize: below two chunks there is nothing
	// to parallelize).
	Cutover int64
	// Verify enables end-to-end digest verification. Multipart
	// transfers always verify with crc32c — the only wire digest with a
	// composition law (CombineCRC32C) — regardless of any transport
	// digest configuration.
	Verify bool
	// Mode is the destination file mode; zero adopts the source mode
	// (or 0644 when that is zero too).
	Mode uint32
	// Progress, when non-nil, observes cumulative transfer progress. It
	// is called from transfer goroutines, serialized by the engine.
	Progress func(copied, total int64)
	// Retry, when non-nil, is applied at two levels: around each chunk
	// operation (a failed chunk retries independently, reconnecting its
	// side first) and around the whole transfer (an integrity failure
	// at completion re-runs the copy). resilient.Policy satisfies it.
	Retry Retryer
}

// normalize fills defaults in place.
func (o *CopyOptions) normalize() {
	if o.Concurrency < 1 {
		o.Concurrency = 1
	}
	if o.ChunkSize <= 0 {
		o.ChunkSize = DefaultChunkSize
	}
	if o.Cutover <= 0 {
		o.Cutover = 2 * o.ChunkSize
	}
}

// Copy transfers the file at src to dst under opts and returns the
// number of bytes copied. It is the single sanctioned transfer
// entrypoint; see the package comment above and CopyOptions for the
// strategy selection.
func Copy(ctx context.Context, dst, src Loc, opts CopyOptions) (int64, error) {
	bc, err := NewBulkCopier(dst, src, opts)
	if err != nil {
		return 0, err
	}
	return bc.Run(ctx)
}

// PutBytes stores data as the named file through the same strategy
// selection as Copy: a single-shot put below the cutover, a parallel
// multipart put (with composed-digest completion) at or above it.
// mode zero defaults to 0644.
func PutBytes(ctx context.Context, dst Loc, mode uint32, data []byte, opts CopyOptions) error {
	if dst.FS == nil {
		return EINVAL
	}
	opts.normalize()
	if mode == 0 {
		mode = 0o644
	}
	size := int64(len(data))
	bc := &BulkCopier{dst: dst, opts: opts, size: size, mode: mode}
	bc.newChunkReader = func() (func(p []byte, off int64) error, func()) {
		return func(p []byte, off int64) error {
			copy(p, data[off:off+int64(len(p))])
			return nil
		}, func() {}
	}
	op := func() error {
		bc.copied.Store(0)
		if bc.multipartEligible() {
			return bc.runMultipart(ctx)
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := PutReader(dst.FS, dst.Path, mode, size, bc.meterReader(bytes.NewReader(data))); err != nil {
			return err
		}
		if opts.Verify {
			want := FormatCRC32C(CRC32C(0, data))
			return bc.verifyDst(want)
		}
		return nil
	}
	return bc.runWithRetry(op)
}

// BulkCopier is the transfer engine behind Copy: one value per
// transfer, holding the resolved plan and progress accounting. Most
// callers use Copy; constructing a BulkCopier directly is for callers
// that want to Run the same plan after inspection.
type BulkCopier struct {
	dst, src Loc
	opts     CopyOptions
	size     int64
	mode     uint32

	// newChunkReader, when set, overrides the source side of multipart
	// chunk reads (PutBytes feeds chunks from memory). Each worker gets
	// its own reader from the factory and closes it when done.
	newChunkReader func() (read func(p []byte, off int64) error, closer func())

	copied atomic.Int64
	progMu sync.Mutex
}

// NewBulkCopier validates endpoints and freezes options for one
// transfer.
func NewBulkCopier(dst, src Loc, opts CopyOptions) (*BulkCopier, error) {
	if dst.FS == nil || src.FS == nil {
		return nil, EINVAL
	}
	opts.normalize()
	return &BulkCopier{dst: dst, src: src, opts: opts}, nil
}

// Copied reports the bytes transferred so far (or in total, after Run).
func (bc *BulkCopier) Copied() int64 { return bc.copied.Load() }

// progress accumulates n transferred bytes and notifies the observer,
// serialized so a Progress callback never races itself.
func (bc *BulkCopier) progress(n int64) {
	c := bc.copied.Add(n)
	if bc.opts.Progress != nil {
		bc.progMu.Lock()
		bc.opts.Progress(c, bc.size)
		bc.progMu.Unlock()
	}
}

// meterReader wraps r so bytes flowing through it feed progress.
func (bc *BulkCopier) meterReader(r io.Reader) io.Reader { return &meterR{bc: bc, r: r} }

type meterR struct {
	bc *BulkCopier
	r  io.Reader
}

func (m *meterR) Read(p []byte) (int, error) {
	n, err := m.r.Read(p)
	if n > 0 {
		m.bc.progress(int64(n))
	}
	return n, err
}

type meterW struct {
	bc *BulkCopier
	w  io.Writer
}

func (m *meterW) Write(p []byte) (int, error) {
	n, err := m.w.Write(p)
	if n > 0 {
		m.bc.progress(int64(n))
	}
	return n, err
}

// connRetryable marks errors a reconnect-and-retry can cure.
func connRetryable(err error) bool {
	switch AsErrno(err) {
	case ENOTCONN, ETIMEDOUT:
		return true
	}
	return false
}

// transferRetryable additionally retries integrity failures: a
// corrupted or torn transfer re-run is a fresh transfer.
func transferRetryable(err error) bool {
	return connRetryable(err) || errors.Is(err, ErrIntegrity) || AsErrno(err) == EBADMSG
}

// retryOn runs op under the configured policy (or once, without one),
// reconnecting fs — when it can — before each retry. retryable
// classifies which failures are worth another attempt.
func (bc *BulkCopier) retryOn(fs FileSystem, op func() error, retryable func(error) bool) error {
	if bc.opts.Retry == nil {
		return op()
	}
	var prepare func() error
	if fs != nil {
		if rc := Capabilities(fs).Reconnector; rc != nil {
			prepare = rc.Reconnect
		}
	}
	err, _ := bc.opts.Retry.Do(op, prepare, retryable)
	return err
}

// prepareBoth reconnects whichever endpoints can be reconnected; it is
// the recovery step for whole-transfer retries.
func (bc *BulkCopier) prepareBoth() error {
	for _, l := range []Loc{bc.src, bc.dst} {
		if l.FS == nil {
			continue
		}
		if rc := Capabilities(l.FS).Reconnector; rc != nil {
			if err := rc.Reconnect(); err != nil {
				return err
			}
		}
	}
	return nil
}

// runWithRetry applies the whole-transfer retry level around op.
func (bc *BulkCopier) runWithRetry(op func() error) error {
	if bc.opts.Retry == nil {
		return op()
	}
	err, _ := bc.opts.Retry.Do(op, bc.prepareBoth, transferRetryable)
	return err
}

func (bc *BulkCopier) multipartEligible() bool {
	return bc.opts.Concurrency > 1 && bc.size >= bc.opts.Cutover
}

// Run executes the transfer and returns the bytes copied.
func (bc *BulkCopier) Run(ctx context.Context) (int64, error) {
	fi, err := bc.src.FS.Stat(bc.src.Path)
	if err != nil {
		return 0, err
	}
	if fi.IsDir {
		return 0, EISDIR
	}
	bc.size = fi.Size
	bc.mode = bc.opts.Mode
	if bc.mode == 0 {
		bc.mode = fi.Mode
	}
	if bc.mode == 0 {
		bc.mode = 0o644
	}
	op := func() error {
		bc.copied.Store(0)
		if err := ctx.Err(); err != nil {
			return err
		}
		if bc.multipartEligible() {
			return bc.runMultipart(ctx)
		}
		return bc.runSingle()
	}
	if err := bc.runWithRetry(op); err != nil {
		return bc.copied.Load(), err
	}
	return bc.copied.Load(), nil
}

// runSingle moves the file in one stream, picking the best pairing of
// whole-file fast paths the two sides offer.
func (bc *BulkCopier) runSingle() error {
	srcCaps := Capabilities(bc.src.FS)
	dstCaps := Capabilities(bc.dst.FS)
	var err error
	switch {
	case srcCaps.FileGetter != nil && dstCaps.FilePutter != nil:
		err = bc.singlePipe(srcCaps.FileGetter, dstCaps.FilePutter)
	case srcCaps.FileGetter != nil:
		err = bc.singleFromGetter(srcCaps.FileGetter)
	case dstCaps.FilePutter != nil:
		err = bc.singleToPutter(dstCaps.FilePutter)
	default:
		err = bc.singlePositional()
	}
	if err != nil {
		return err
	}
	if bc.opts.Verify {
		srcSum, err := ChecksumFile(bc.src.FS, bc.src.Path, AlgoCRC32C)
		if err != nil {
			return err
		}
		return bc.verifyDst(srcSum)
	}
	return nil
}

// verifyDst checks the destination digest against want, removing the
// destination on mismatch so no wrong bytes survive at rest.
func (bc *BulkCopier) verifyDst(want string) error {
	got, err := ChecksumFile(bc.dst.FS, bc.dst.Path, AlgoCRC32C)
	if err != nil {
		return err
	}
	if got != want {
		bc.dst.FS.Unlink(bc.dst.Path)
		return ChecksumMismatch(bc.dst.Path, AlgoCRC32C, want, got)
	}
	return nil
}

// singlePipe streams getter→putter through a pipe: both fast paths, no
// intermediate file, one buffer in flight.
func (bc *BulkCopier) singlePipe(g FileGetter, p FilePutter) error {
	pr, pw := io.Pipe()
	getErr := make(chan error, 1)
	go func() {
		_, err := g.GetFile(bc.src.Path, pw)
		pw.CloseWithError(err)
		getErr <- err
	}()
	putErr := p.PutFile(bc.dst.Path, bc.mode, bc.size, bc.meterReader(pr))
	pr.CloseWithError(putErr)
	if gerr := <-getErr; gerr != nil {
		return gerr
	}
	return putErr
}

// singleFromGetter streams the source fast path into a positional
// destination file.
func (bc *BulkCopier) singleFromGetter(g FileGetter) error {
	f, err := bc.dst.FS.Open(bc.dst.Path, O_WRONLY|O_CREAT|O_TRUNC, bc.mode)
	if err != nil {
		return err
	}
	_, gerr := g.GetFile(bc.src.Path, &meterW{bc: bc, w: NewSeqFile(f)})
	cerr := f.Close()
	if gerr != nil {
		return gerr
	}
	return cerr
}

// singleToPutter streams a positional source file into the destination
// fast path.
func (bc *BulkCopier) singleToPutter(p FilePutter) error {
	f, err := bc.src.FS.Open(bc.src.Path, O_RDONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	return p.PutFile(bc.dst.Path, bc.mode, bc.size, bc.meterReader(NewSeqFile(f)))
}

// singlePositional is the no-fast-path fallback: a pread/pwrite loop.
func (bc *BulkCopier) singlePositional() error {
	in, err := bc.src.FS.Open(bc.src.Path, O_RDONLY, 0)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := bc.dst.FS.Open(bc.dst.Path, O_WRONLY|O_CREAT|O_TRUNC, bc.mode)
	if err != nil {
		return err
	}
	buf := make([]byte, 256<<10)
	var off int64
	for {
		n, err := in.Pread(buf, off)
		if err != nil {
			out.Close()
			return err
		}
		if n == 0 {
			break
		}
		if err := WriteAll(out, buf[:n], off); err != nil {
			out.Close()
			return err
		}
		off += int64(n)
		bc.progress(int64(n))
	}
	return out.Close()
}

// sliceWriter fills a fixed slice; the multipart engine points one at
// each chunk buffer so GetPart streams land in place.
type sliceWriter struct {
	p []byte
	n int
}

func (s *sliceWriter) Write(q []byte) (int, error) {
	n := copy(s.p[s.n:], q)
	s.n += n
	if n < len(q) {
		return n, io.ErrShortWrite
	}
	return n, nil
}

// runMultipart is one parallel multipart transfer attempt: negotiate
// part support on each side (falling back to concurrent positional I/O
// where a side lacks it or its server predates the verbs), fan chunks
// out over Concurrency workers, then complete — verifying the composed
// whole-file digest when Verify is on. Any failure removes the partial
// destination before returning.
func (bc *BulkCopier) runMultipart(ctx context.Context) error {
	algo := ""
	if bc.opts.Verify {
		algo = AlgoCRC32C
	}

	// Source side: the part-read capability, probed with a zero-length
	// getpart so a server that predates the verb answers EINVAL with its
	// framing intact and the transfer degrades to positional reads. The
	// probe costs one tiny RPC; memoizing it per transfer keeps the
	// negotiation logic in one place.
	var srcPart PartGetter
	if bc.newChunkReader == nil {
		srcPart = Capabilities(bc.src.FS).PartGetter
		if srcPart != nil {
			err := bc.retryOn(bc.src.FS, func() error {
				_, _, e := srcPart.GetPart(bc.src.Path, 0, 0, "", io.Discard)
				return e
			}, connRetryable)
			if err != nil {
				if AsErrno(err) != EINVAL || errors.Is(err, ErrIntegrity) {
					return err
				}
				srcPart = nil
			}
		}
	}

	// Destination side: putbegin doubles as the negotiation probe (it
	// has no body, so an old server's EINVAL leaves the stream in sync)
	// and creates the file at its final path and full size, which is
	// also what the positional fallback needs.
	dstPart := Capabilities(bc.dst.FS).PartPutter
	if dstPart != nil {
		err := bc.retryOn(bc.dst.FS, func() error {
			return dstPart.PutBegin(bc.dst.Path, bc.mode, bc.size)
		}, connRetryable)
		if err != nil {
			if AsErrno(err) != EINVAL {
				return err
			}
			dstPart = nil
		}
	}
	if dstPart == nil {
		f, err := bc.dst.FS.Open(bc.dst.Path, O_WRONLY|O_CREAT|O_TRUNC, bc.mode)
		if err != nil {
			return err
		}
		terr := f.Ftruncate(bc.size)
		cerr := f.Close()
		if terr != nil {
			return terr
		}
		if cerr != nil {
			return cerr
		}
	}

	chunk := bc.opts.ChunkSize
	nchunks := (bc.size + chunk - 1) / chunk
	crcs := make([]uint32, nchunks)

	workers := bc.opts.Concurrency
	if int64(workers) > nchunks {
		workers = int(nchunks)
	}

	var (
		next     atomic.Int64
		stop     atomic.Bool
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		stop.Store(true)
	}

	newReader := bc.newChunkReader
	if newReader == nil {
		newReader = func() (func(p []byte, off int64) error, func()) {
			var f File
			read := func(p []byte, off int64) error {
				return bc.retryOn(bc.src.FS, func() error {
					if srcPart != nil {
						sw := &sliceWriter{p: p}
						got, _, err := srcPart.GetPart(bc.src.Path, off, int64(len(p)), algo, sw)
						if err != nil {
							return err
						}
						if got != int64(len(p)) {
							return fmt.Errorf("short part read at %d: got %d, want %d: %w",
								off, got, len(p), EIO)
						}
						return nil
					}
					if f == nil {
						var err error
						f, err = bc.src.FS.Open(bc.src.Path, O_RDONLY, 0)
						if err != nil {
							return err
						}
					}
					if err := ReadFull(f, p, off); err != nil {
						// The handle may be fenced to a dead connection;
						// drop it so the retry reopens.
						f.Close()
						f = nil
						return err
					}
					return nil
				}, transferRetryable)
			}
			closer := func() {
				if f != nil {
					f.Close()
				}
			}
			return read, closer
		}
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			read, closeRead := newReader()
			defer closeRead()
			var dstFile File
			defer func() {
				if dstFile != nil {
					dstFile.Close()
				}
			}()
			buf := make([]byte, chunk)
			for {
				if stop.Load() {
					return
				}
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				i := next.Add(1) - 1
				if i >= nchunks {
					return
				}
				off := i * chunk
				n := chunk
				if bc.size-off < n {
					n = bc.size - off
				}
				p := buf[:n]
				if err := read(p, off); err != nil {
					fail(err)
					return
				}
				if bc.opts.Verify {
					crcs[i] = CRC32C(0, p)
				}
				err := bc.retryOn(bc.dst.FS, func() error {
					if dstPart != nil {
						_, err := dstPart.PutPart(bc.dst.Path, off, n, algo, bytes.NewReader(p))
						return err
					}
					if dstFile == nil {
						var err error
						dstFile, err = bc.dst.FS.Open(bc.dst.Path, O_WRONLY, 0)
						if err != nil {
							return err
						}
					}
					if err := WriteAll(dstFile, p, off); err != nil {
						dstFile.Close()
						dstFile = nil
						return err
					}
					return nil
				}, transferRetryable)
				if err != nil {
					fail(err)
					return
				}
				bc.progress(n)
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		bc.cleanupMultipart(dstPart)
		return firstErr
	}

	// Completion. Chunk digests compose in offset order into the digest
	// a single-stream transfer would have produced; the put side hands
	// it to putcomplete (the server hashes the assembled file and
	// removes it on mismatch), the get side compares it against the
	// source's authoritative server-side digest when one is offered.
	var composed uint32
	if bc.opts.Verify {
		composed = crcs[0]
		for i := int64(1); i < nchunks; i++ {
			clen := chunk
			if i == nchunks-1 {
				clen = bc.size - i*chunk
			}
			composed = CombineCRC32C(composed, crcs[i], clen)
		}
	}
	if dstPart != nil {
		sum := ""
		if bc.opts.Verify {
			sum = FormatCRC32C(composed)
		}
		// Completion is deliberately not integrity-retried: after a
		// digest mismatch the server has already removed the file, so
		// the cure is re-running the whole transfer (the outer retry
		// level), not re-asking.
		err := bc.retryOn(bc.dst.FS, func() error {
			return dstPart.PutComplete(bc.dst.Path, bc.size, algo, sum)
		}, connRetryable)
		if err != nil {
			bc.cleanupMultipart(dstPart)
			if AsErrno(err) == EBADMSG && !errors.Is(err, ErrIntegrity) {
				err = fmt.Errorf("%s: composed %s digest rejected by server: %w",
					bc.dst.Path, AlgoCRC32C, errors.Join(EIO, ErrIntegrity))
			}
			return err
		}
	} else if bc.opts.Verify && bc.src.FS != nil {
		if cs := Capabilities(bc.src.FS).Checksummer; cs != nil {
			want, err := cs.Checksum(bc.src.Path, AlgoCRC32C)
			if err != nil {
				bc.cleanupMultipart(dstPart)
				return err
			}
			if got := FormatCRC32C(composed); got != want {
				bc.cleanupMultipart(dstPart)
				return ChecksumMismatch(bc.src.Path, AlgoCRC32C, want, got)
			}
		}
	}
	return nil
}

// cleanupMultipart removes partial destination state after a failed
// multipart transfer; a server-side putcomplete mismatch has already
// unlinked, so a resulting ENOENT here is the success case.
func (bc *BulkCopier) cleanupMultipart(PartPutter) {
	bc.dst.FS.Unlink(bc.dst.Path)
}
