package vfs

import (
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"

	"crypto/sha256"
	"encoding/hex"
)

// Digest algorithms understood by every layer. The names travel over
// the wire (checksum/getfilesum/putfilesum RPCs), so they are fixed by
// the protocol: crc32c is the cheap default for detecting bit rot and
// torn transfers; sha256 is for callers that also care about collision
// resistance.
const (
	AlgoCRC32C = "crc32c"
	AlgoSHA256 = "sha256"
)

// DefaultAlgo is the digest used when a caller does not choose one.
const DefaultAlgo = AlgoCRC32C

// ErrIntegrity marks data that failed digest verification: a payload
// whose computed checksum does not match the digest promised by the
// source. It is always wrapped together with an Errno (EIO), so both
// errors.Is(err, ErrIntegrity) and AsErrno(err) == EIO hold; the
// resilience layer thus treats a lying replica like a failing one and
// demotes it, while callers that care specifically about corruption
// can still tell it apart from an ordinary I/O error.
var ErrIntegrity = errors.New("integrity check failed")

// ChecksumMismatch constructs the canonical integrity failure for a
// path: the computed digest got disagrees with the expected digest
// want. The result wraps both EIO and ErrIntegrity.
func ChecksumMismatch(path, algo, want, got string) error {
	return fmt.Errorf("%s: %s digest %s, want %s: %w",
		path, algo, got, want, errors.Join(EIO, ErrIntegrity))
}

// castagnoli is the CRC32C polynomial table, shared by all hashers.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// NewHash returns a streaming hasher for the named digest algorithm,
// or EINVAL for an unknown name.
func NewHash(algo string) (hash.Hash, error) {
	switch algo {
	case AlgoCRC32C:
		return crc32.New(castagnoli), nil
	case AlgoSHA256:
		return sha256.New(), nil
	}
	return nil, fmt.Errorf("unknown digest algorithm %q: %w", algo, EINVAL)
}

// Checksummer is the optional content-digest interface: compute the
// digest of a whole file where the data lives, without shipping the
// bytes to the caller. A Chirp client forwards it as one round trip
// (the checksum RPC); the local filesystem streams the host file. The
// digest is returned as lowercase hex. Reach it through Capabilities,
// never by direct type assertion.
type Checksummer interface {
	Checksum(path string, algo string) (string, error)
}

// ChecksumFile computes the digest of a file, using the Checksummer
// fast path when fs provides one and reading the file through the
// FileGetter/open-pread path otherwise.
func ChecksumFile(fs FileSystem, path, algo string) (string, error) {
	if cs := Capabilities(fs).Checksummer; cs != nil {
		return cs.Checksum(path, algo)
	}
	return HashFile(fs, path, algo)
}

// HashFile computes a file's digest by reading its bytes through fs.
// It is the portable fallback behind ChecksumFile and the reference
// implementation the wire digests are compared against.
func HashFile(fs FileSystem, path, algo string) (string, error) {
	h, err := NewHash(algo)
	if err != nil {
		return "", err
	}
	if g := Capabilities(fs).FileGetter; g != nil {
		if _, err := g.GetFile(path, h); err != nil {
			return "", err
		}
		return hex.EncodeToString(h.Sum(nil)), nil
	}
	f, err := fs.Open(path, O_RDONLY, 0)
	if err != nil {
		return "", err
	}
	defer f.Close()
	buf := make([]byte, 256<<10)
	var off int64
	for {
		n, err := f.Pread(buf, off)
		if n > 0 {
			h.Write(buf[:n])
			off += int64(n)
		}
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return "", err
		}
		if n == 0 {
			break
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
