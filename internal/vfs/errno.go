package vfs

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"syscall"
)

// Errno is the error number model shared by every layer of the TSS. The
// wire protocols carry these values as negative integers, exactly like
// Unix system call returns; the abstraction layers translate them back
// into Go errors. Values are fixed by the protocol and must not change.
type Errno int

// Protocol error numbers. These deliberately mirror the classic Unix
// values so that traces read naturally, but they are defined
// independently of the host platform: the wire format is portable.
const (
	EOK          Errno = 0   // success (never returned as an error)
	EPERM        Errno = 1   // operation not permitted
	ENOENT       Errno = 2   // no such file or directory
	EIO          Errno = 5   // input/output error
	EBADF        Errno = 9   // bad file descriptor
	EAGAIN       Errno = 11  // resource temporarily unavailable (overload pushback)
	EACCES       Errno = 13  // permission denied
	EBUSY        Errno = 16  // device or resource busy
	EEXIST       Errno = 17  // file exists
	ENOTDIR      Errno = 20  // not a directory
	EISDIR       Errno = 21  // is a directory
	EINVAL       Errno = 22  // invalid argument
	EMFILE       Errno = 24  // too many open files
	EFBIG        Errno = 27  // file too large
	ENOSPC       Errno = 28  // no space left on device
	EROFS        Errno = 30  // read-only file system
	ENAMETOOLONG Errno = 36  // file name too long
	ENOTEMPTY    Errno = 39  // directory not empty
	EBADMSG      Errno = 74  // bad message (digest verification failed)
	ENOTCONN     Errno = 107 // transport endpoint is not connected
	ESHUTDOWN    Errno = 108 // cannot send after transport endpoint shutdown (server draining)
	ETIMEDOUT    Errno = 110 // connection timed out
	ESTALE       Errno = 116 // stale file handle
)

var errnoText = map[Errno]string{
	EPERM:        "operation not permitted",
	ENOENT:       "no such file or directory",
	EIO:          "input/output error",
	EBADF:        "bad file descriptor",
	EAGAIN:       "resource temporarily unavailable",
	EACCES:       "permission denied",
	EBUSY:        "device or resource busy",
	EEXIST:       "file exists",
	ENOTDIR:      "not a directory",
	EISDIR:       "is a directory",
	EINVAL:       "invalid argument",
	EMFILE:       "too many open files",
	EFBIG:        "file too large",
	ENOSPC:       "no space left on device",
	EROFS:        "read-only file system",
	ENAMETOOLONG: "file name too long",
	ENOTEMPTY:    "directory not empty",
	EBADMSG:      "bad message",
	ENOTCONN:     "transport endpoint is not connected",
	ESHUTDOWN:    "cannot send after transport endpoint shutdown",
	ETIMEDOUT:    "connection timed out",
	ESTALE:       "stale file handle",
}

// Error implements the error interface.
func (e Errno) Error() string {
	if s, ok := errnoText[e]; ok {
		return s
	}
	return fmt.Sprintf("errno %d", int(e))
}

// Is makes Errno compatible with errors.Is against the sentinel errors
// in io/fs, so callers can use fs.ErrNotExist and friends.
func (e Errno) Is(target error) bool {
	switch target {
	case fs.ErrNotExist:
		return e == ENOENT
	case fs.ErrPermission:
		return e == EACCES || e == EPERM
	case fs.ErrExist:
		return e == EEXIST
	case fs.ErrClosed:
		return e == EBADF
	}
	return false
}

// AsErrno extracts the protocol error number from err. Errors that did
// not originate in the TSS stack are mapped from the nearest os/syscall
// meaning, defaulting to EIO.
func AsErrno(err error) Errno {
	if err == nil {
		return EOK
	}
	var e Errno
	if errors.As(err, &e) {
		return e
	}
	var sys syscall.Errno
	if errors.As(err, &sys) {
		switch sys {
		case syscall.EPERM:
			return EPERM
		case syscall.ENOENT:
			return ENOENT
		case syscall.EBADF:
			return EBADF
		case syscall.EAGAIN:
			return EAGAIN
		case syscall.EACCES:
			return EACCES
		case syscall.EBUSY:
			return EBUSY
		case syscall.EEXIST:
			return EEXIST
		case syscall.ENOTDIR:
			return ENOTDIR
		case syscall.EISDIR:
			return EISDIR
		case syscall.EINVAL:
			return EINVAL
		case syscall.EMFILE, syscall.ENFILE:
			return EMFILE
		case syscall.EFBIG:
			return EFBIG
		case syscall.ENOSPC:
			return ENOSPC
		case syscall.EROFS:
			return EROFS
		case syscall.ENAMETOOLONG:
			return ENAMETOOLONG
		case syscall.ENOTEMPTY:
			return ENOTEMPTY
		case syscall.EBADMSG:
			return EBADMSG
		case syscall.ENOTCONN:
			return ENOTCONN
		case syscall.ESHUTDOWN:
			return ESHUTDOWN
		case syscall.ETIMEDOUT:
			return ETIMEDOUT
		case syscall.ESTALE:
			return ESTALE
		}
		return EIO
	}
	switch {
	case errors.Is(err, fs.ErrNotExist):
		return ENOENT
	case errors.Is(err, fs.ErrPermission):
		return EACCES
	case errors.Is(err, fs.ErrExist):
		return EEXIST
	case errors.Is(err, fs.ErrClosed):
		return EBADF
	case errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF):
		return ENOTCONN
	case errors.Is(err, os.ErrDeadlineExceeded):
		return ETIMEDOUT
	}
	return EIO
}

// FromCode converts a wire error number into an error. Zero and
// positive codes yield nil.
func FromCode(code int) error {
	if code >= 0 {
		return nil
	}
	return Errno(-code)
}

// Code converts an error into a wire return value: 0 for nil, otherwise
// the negated errno.
func Code(err error) int {
	if err == nil {
		return 0
	}
	return -int(AsErrno(err))
}
