package vfs

import (
	"io"

	"tss/internal/pathutil"
)

// SubtreeFS exposes a subdirectory of another FileSystem as a complete
// filesystem of its own. It is the glue of recursive abstraction: a
// DSFS can keep its directory tree inside any directory of any Chirp
// server, and the adapter can mount any subtree anywhere.
type SubtreeFS struct {
	inner  FileSystem
	prefix string
}

var _ FileSystem = (*SubtreeFS)(nil)

// Subtree returns a view of inner rooted at prefix. The prefix is
// normalized; it is not required to exist yet.
func Subtree(inner FileSystem, prefix string) (*SubtreeFS, error) {
	n, err := pathutil.Norm(prefix)
	if err != nil {
		return nil, EINVAL
	}
	return &SubtreeFS{inner: inner, prefix: n}, nil
}

func (s *SubtreeFS) translate(path string) (string, error) {
	n, err := pathutil.Norm(path)
	if err != nil {
		return "", EINVAL
	}
	if s.prefix == "/" {
		return n, nil
	}
	if n == "/" {
		return s.prefix, nil
	}
	return s.prefix + n, nil
}

// Open opens a file within the subtree.
func (s *SubtreeFS) Open(path string, flags int, mode uint32) (File, error) {
	p, err := s.translate(path)
	if err != nil {
		return nil, err
	}
	return s.inner.Open(p, flags, mode)
}

// Stat stats a file within the subtree.
func (s *SubtreeFS) Stat(path string) (FileInfo, error) {
	p, err := s.translate(path)
	if err != nil {
		return FileInfo{}, err
	}
	return s.inner.Stat(p)
}

// Unlink removes a file within the subtree.
func (s *SubtreeFS) Unlink(path string) error {
	p, err := s.translate(path)
	if err != nil {
		return err
	}
	return s.inner.Unlink(p)
}

// Rename renames within the subtree.
func (s *SubtreeFS) Rename(oldPath, newPath string) error {
	op, err := s.translate(oldPath)
	if err != nil {
		return err
	}
	np, err := s.translate(newPath)
	if err != nil {
		return err
	}
	return s.inner.Rename(op, np)
}

// Mkdir creates a directory within the subtree.
func (s *SubtreeFS) Mkdir(path string, mode uint32) error {
	p, err := s.translate(path)
	if err != nil {
		return err
	}
	return s.inner.Mkdir(p, mode)
}

// Rmdir removes a directory within the subtree.
func (s *SubtreeFS) Rmdir(path string) error {
	p, err := s.translate(path)
	if err != nil {
		return err
	}
	return s.inner.Rmdir(p)
}

// ReadDir lists a directory within the subtree.
func (s *SubtreeFS) ReadDir(path string) ([]DirEntry, error) {
	p, err := s.translate(path)
	if err != nil {
		return nil, err
	}
	return s.inner.ReadDir(p)
}

// Truncate truncates a file within the subtree.
func (s *SubtreeFS) Truncate(path string, size int64) error {
	p, err := s.translate(path)
	if err != nil {
		return err
	}
	return s.inner.Truncate(p, size)
}

// Chmod changes modes within the subtree.
func (s *SubtreeFS) Chmod(path string, mode uint32) error {
	p, err := s.translate(path)
	if err != nil {
		return err
	}
	return s.inner.Chmod(p, mode)
}

// StatFS reports the capacity of the underlying filesystem.
func (s *SubtreeFS) StatFS() (FSInfo, error) { return s.inner.StatFS() }

// Reconnect forwards to the inner filesystem when it supports
// reconnection, so recovery works through subtree views.
func (s *SubtreeFS) Reconnect() error {
	if rc, ok := s.inner.(Reconnector); ok {
		return rc.Reconnect()
	}
	return nil
}

// OpenStat forwards the open-with-stat fast path when the inner
// filesystem provides one.
func (s *SubtreeFS) OpenStat(path string, flags int, mode uint32) (File, FileInfo, error) {
	p, err := s.translate(path)
	if err != nil {
		return nil, FileInfo{}, err
	}
	if o, ok := s.inner.(OpenStater); ok {
		return o.OpenStat(p, flags, mode)
	}
	f, err := s.inner.Open(p, flags, mode)
	if err != nil {
		return nil, FileInfo{}, err
	}
	fi, err := f.Fstat()
	if err != nil {
		f.Close()
		return nil, FileInfo{}, err
	}
	return f, fi, nil
}

// GetFile forwards the whole-file fast path when the inner filesystem
// provides one; otherwise it falls back to open/pread/close.
func (s *SubtreeFS) GetFile(path string, w io.Writer) (int64, error) {
	p, err := s.translate(path)
	if err != nil {
		return 0, err
	}
	if g := Capabilities(s.inner).FileGetter; g != nil {
		return g.GetFile(p, w)
	}
	data, err := ReadFile(s.inner, p)
	if err != nil {
		return 0, err
	}
	n, err := w.Write(data)
	return int64(n), err
}

// PutFile forwards the whole-file store fast path when the inner
// filesystem provides one; otherwise it falls back to open/pwrite.
func (s *SubtreeFS) PutFile(path string, mode uint32, size int64, r io.Reader) error {
	p, err := s.translate(path)
	if err != nil {
		return err
	}
	return PutReader(s.inner, p, mode, size, r)
}

// GetPart forwards the offset-addressed bulk read fast path when the
// inner filesystem provides one.
func (s *SubtreeFS) GetPart(path string, off, length int64, algo string, w io.Writer) (int64, string, error) {
	p, err := s.translate(path)
	if err != nil {
		return 0, "", err
	}
	if g := Capabilities(s.inner).PartGetter; g != nil {
		return g.GetPart(p, off, length, algo, w)
	}
	return 0, "", EINVAL
}

// PutBegin forwards the multipart open when the inner filesystem
// provides one.
func (s *SubtreeFS) PutBegin(path string, mode uint32, size int64) error {
	p, err := s.translate(path)
	if err != nil {
		return err
	}
	if pp := Capabilities(s.inner).PartPutter; pp != nil {
		return pp.PutBegin(p, mode, size)
	}
	return EINVAL
}

// PutPart forwards one multipart chunk into the subtree.
func (s *SubtreeFS) PutPart(path string, off, length int64, algo string, r io.Reader) (string, error) {
	p, err := s.translate(path)
	if err != nil {
		return "", err
	}
	if pp := Capabilities(s.inner).PartPutter; pp != nil {
		return pp.PutPart(p, off, length, algo, r)
	}
	return "", EINVAL
}

// PutComplete forwards the multipart completion into the subtree.
func (s *SubtreeFS) PutComplete(path string, size int64, algo, sum string) error {
	p, err := s.translate(path)
	if err != nil {
		return err
	}
	if pp := Capabilities(s.inner).PartPutter; pp != nil {
		return pp.PutComplete(p, size, algo, sum)
	}
	return EINVAL
}

// Checksum forwards the content-digest fast path into the subtree,
// falling back to hashing the bytes read through the view.
func (s *SubtreeFS) Checksum(path, algo string) (string, error) {
	p, err := s.translate(path)
	if err != nil {
		return "", err
	}
	return ChecksumFile(s.inner, p, algo)
}

// Capabilities reports the capabilities of the inner filesystem,
// re-rooted at the subtree: a fast path exists through the view exactly
// when the wrapped layer has it. Closing is deliberately absent — the
// view does not own the inner filesystem's connection.
func (s *SubtreeFS) Capabilities() Capability {
	inner := Capabilities(s.inner)
	var c Capability
	if inner.OpenStater != nil {
		c.OpenStater = s
	}
	if inner.FileGetter != nil {
		c.FileGetter = s
	}
	if inner.FilePutter != nil {
		c.FilePutter = s
	}
	if inner.PartGetter != nil {
		c.PartGetter = s
	}
	if inner.PartPutter != nil {
		c.PartPutter = s
	}
	if inner.Checksummer != nil {
		c.Checksummer = s
	}
	if inner.Reconnector != nil {
		c.Reconnector = s
	}
	return c
}

// MkdirAll creates every missing directory along path on fs.
func MkdirAll(fs FileSystem, path string, mode uint32) error {
	n, err := pathutil.Norm(path)
	if err != nil {
		return EINVAL
	}
	if n == "/" {
		return nil
	}
	cur := ""
	for _, comp := range pathutil.Split(n) {
		cur += "/" + comp
		if err := fs.Mkdir(cur, mode); err != nil && AsErrno(err) != EEXIST {
			return err
		}
	}
	return nil
}
