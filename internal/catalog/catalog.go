// Package catalog implements the catalog server of the tactical
// storage system (§4 of the paper).
//
// Every file server periodically reports its vital data — owner,
// address, capacity, top-level ACL — to one or more catalogs. A catalog
// publishes the aggregate list in several formats so users and
// abstractions can discover storage at run time. Entries that stop
// reporting are evicted after a configurable timeout. All catalog data
// is necessarily stale: consumers must be prepared to revisit
// assumptions when they contact the server itself.
package catalog

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Report is one file server's periodic self-description.
type Report struct {
	Name       string `json:"name"`  // advertised server name
	Addr       string `json:"addr"`  // dialable address
	Owner      string `json:"owner"` // owner subject
	Version    string `json:"version,omitempty"`
	TotalBytes int64  `json:"total_bytes"`
	FreeBytes  int64  `json:"free_bytes"`
	RootACL    string `json:"root_acl,omitempty"`
	// Load summary, filled from the server's counters so a catalog
	// listing doubles as a fleet dashboard (zeroes omitted).
	Connections  int64 `json:"connections,omitempty"`
	Requests     int64 `json:"requests,omitempty"`
	BytesRead    int64 `json:"bytes_read,omitempty"`
	BytesWritten int64 `json:"bytes_written,omitempty"`
	// Received is stamped by the catalog, not the reporter.
	Received time.Time `json:"received"`
}

// Server collects reports and publishes listings.
type Server struct {
	// Timeout evicts servers that have not reported for this long.
	Timeout time.Duration
	// Now supplies the clock; nil means time.Now (tests override).
	Now func() time.Time

	mu      sync.Mutex
	entries map[string]Report // keyed by Name
	changed chan struct{}     // closed on ingest; lazily (re)created by WaitFor
}

// NewServer returns a catalog with the given eviction timeout.
func NewServer(timeout time.Duration) *Server {
	if timeout <= 0 {
		timeout = 5 * time.Minute
	}
	return &Server{Timeout: timeout, entries: make(map[string]Report)}
}

func (s *Server) now() time.Time {
	if s.Now != nil {
		return s.Now()
	}
	return time.Now()
}

// Ingest records one report, replacing any previous report from the
// same server name.
func (s *Server) Ingest(r Report) {
	r.Received = s.now()
	s.mu.Lock()
	s.entries[r.Name] = r
	if s.changed != nil {
		close(s.changed)
		s.changed = nil
	}
	s.mu.Unlock()
}

// WaitFor blocks until the catalog lists at least n live servers or
// the timeout elapses, reporting whether the quota was met. It is
// event-driven — each ingested report re-checks the count — so callers
// waiting for a fleet to finish registering need no polling sleeps
// (the sleepseam invariant enforced by tsslint).
func (s *Server) WaitFor(n int, timeout time.Duration) bool {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		if len(s.List()) >= n {
			return true
		}
		s.mu.Lock()
		if s.changed == nil {
			s.changed = make(chan struct{})
		}
		ch := s.changed
		s.mu.Unlock()
		select {
		case <-ch:
		case <-deadline.C:
			return len(s.List()) >= n
		}
	}
}

// IngestJSON decodes and records one JSON-encoded report.
func (s *Server) IngestJSON(data []byte) error {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return fmt.Errorf("catalog: bad report: %w", err)
	}
	if r.Name == "" {
		return fmt.Errorf("catalog: report missing name")
	}
	s.Ingest(r)
	return nil
}

// List returns the current, non-expired entries sorted by name.
func (s *Server) List() []Report {
	cutoff := s.now().Add(-s.Timeout)
	s.mu.Lock()
	out := make([]Report, 0, len(s.entries))
	for name, r := range s.entries {
		if r.Received.Before(cutoff) {
			delete(s.entries, name)
			continue
		}
		out = append(out, r)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup returns the entry for one server name.
func (s *Server) Lookup(name string) (Report, bool) {
	for _, r := range s.List() {
		if r.Name == name {
			return r, true
		}
	}
	return Report{}, false
}

// Text renders the listing in the classic human-readable format.
func (s *Server) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %-24s %-28s %12s %12s\n", "NAME", "ADDRESS", "OWNER", "TOTAL", "FREE")
	for _, r := range s.List() {
		fmt.Fprintf(&b, "%-24s %-24s %-28s %12d %12d\n", r.Name, r.Addr, r.Owner, r.TotalBytes, r.FreeBytes)
	}
	return b.String()
}

// JSON renders the listing as a JSON array.
func (s *Server) JSON() ([]byte, error) {
	return json.MarshalIndent(s.List(), "", "  ")
}

// ClassAds renders the listing in the classad-style format of the
// paper's era (Condor matchmaking): one attribute = "value"; block per
// server, blank-line separated.
func (s *Server) ClassAds() string {
	var b strings.Builder
	for _, r := range s.List() {
		fmt.Fprintf(&b, "Name = %q\n", r.Name)
		fmt.Fprintf(&b, "Addr = %q\n", r.Addr)
		fmt.Fprintf(&b, "Owner = %q\n", r.Owner)
		fmt.Fprintf(&b, "TotalBytes = %d\n", r.TotalBytes)
		fmt.Fprintf(&b, "FreeBytes = %d\n", r.FreeBytes)
		if r.Requests > 0 || r.Connections > 0 {
			fmt.Fprintf(&b, "Connections = %d\n", r.Connections)
			fmt.Fprintf(&b, "Requests = %d\n", r.Requests)
			fmt.Fprintf(&b, "BytesRead = %d\n", r.BytesRead)
			fmt.Fprintf(&b, "BytesWritten = %d\n", r.BytesWritten)
		}
		fmt.Fprintf(&b, "LastReport = %q\n", r.Received.UTC().Format(time.RFC3339))
		b.WriteString("\n")
	}
	return b.String()
}

// ServeHTTP publishes the listing: "/" and "/text" in tabular text,
// "/json" as JSON — "a variety of data formats" (§4).
func (s *Server) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	switch req.URL.Path {
	case "/", "/text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, s.Text())
	case "/json":
		data, err := s.JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	case "/classads":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, s.ClassAds())
	default:
		http.NotFound(w, req)
	}
}

// ServeUDP ingests JSON report datagrams until the connection is
// closed. This is the classic Chirp transport: fire-and-forget UDP so a
// dying server cannot wedge the catalog.
func (s *Server) ServeUDP(conn net.PacketConn) error {
	buf := make([]byte, 64<<10)
	for {
		n, _, err := conn.ReadFrom(buf)
		if err != nil {
			return err
		}
		// Malformed datagrams are dropped, as any UDP service must.
		_ = s.IngestJSON(buf[:n])
	}
}

// Reporter periodically sends reports describing one file server to
// one or more catalogs.
type Reporter struct {
	// Describe produces the current report.
	Describe func() Report
	// Send delivers one encoded report to one catalog; there is one
	// entry per catalog destination. In-process catalogs use
	// Server.IngestJSON; UDP destinations use SendUDP.
	Send []func(data []byte) error
	// Interval between reports (default 15 s).
	Interval time.Duration
}

// SendUDP returns a Send function that posts datagrams to addr.
func SendUDP(addr string) func([]byte) error {
	return func(data []byte) error {
		c, err := net.Dial("udp", addr)
		if err != nil {
			return err
		}
		defer c.Close()
		_, err = c.Write(data)
		return err
	}
}

// SendLocal returns a Send function that delivers directly to an
// in-process catalog.
func SendLocal(s *Server) func([]byte) error {
	return s.IngestJSON
}

// ReportOnce sends a single report to every destination, returning the
// first error encountered (all destinations are still attempted: one
// dead catalog must not starve the others).
func (r *Reporter) ReportOnce() error {
	rep := r.Describe()
	data, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	var first error
	for _, send := range r.Send {
		if err := send(data); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Run reports at each interval until stop is closed.
func (r *Reporter) Run(stop <-chan struct{}) {
	interval := r.Interval
	if interval <= 0 {
		interval = 15 * time.Second
	}
	r.ReportOnce()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			r.ReportOnce()
		case <-stop:
			return
		}
	}
}
