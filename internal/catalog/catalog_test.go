package catalog

import (
	"encoding/json"
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func fixedClock(start time.Time) (*time.Time, func() time.Time) {
	now := start
	return &now, func() time.Time { return now }
}

func TestIngestAndList(t *testing.T) {
	s := NewServer(time.Minute)
	s.Ingest(Report{Name: "b.sim", Addr: "b:9094", Owner: "unix:bob", TotalBytes: 100, FreeBytes: 50})
	s.Ingest(Report{Name: "a.sim", Addr: "a:9094", Owner: "unix:alice"})
	list := s.List()
	if len(list) != 2 {
		t.Fatalf("list = %d entries", len(list))
	}
	if list[0].Name != "a.sim" || list[1].Name != "b.sim" {
		t.Errorf("not sorted: %+v", list)
	}
	r, ok := s.Lookup("b.sim")
	if !ok || r.Owner != "unix:bob" {
		t.Errorf("lookup = %+v, %v", r, ok)
	}
	if _, ok := s.Lookup("missing"); ok {
		t.Error("lookup of missing server succeeded")
	}
}

func TestReportReplacesPrevious(t *testing.T) {
	s := NewServer(time.Minute)
	s.Ingest(Report{Name: "a", FreeBytes: 10})
	s.Ingest(Report{Name: "a", FreeBytes: 99})
	list := s.List()
	if len(list) != 1 || list[0].FreeBytes != 99 {
		t.Errorf("list = %+v", list)
	}
}

func TestEvictionAfterTimeout(t *testing.T) {
	now, clock := fixedClock(time.Unix(1000000, 0))
	s := NewServer(30 * time.Second)
	s.Now = clock
	s.Ingest(Report{Name: "stale"})
	*now = now.Add(10 * time.Second)
	s.Ingest(Report{Name: "fresh"})
	*now = now.Add(25 * time.Second) // stale is now 35s old, fresh 25s
	list := s.List()
	if len(list) != 1 || list[0].Name != "fresh" {
		t.Errorf("after timeout list = %+v", list)
	}
	// A re-report resurrects the entry.
	s.Ingest(Report{Name: "stale"})
	if len(s.List()) != 2 {
		t.Error("re-report did not resurrect entry")
	}
}

func TestIngestJSONValidation(t *testing.T) {
	s := NewServer(time.Minute)
	if err := s.IngestJSON([]byte(`{"name":"x","addr":"x:1"}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.IngestJSON([]byte(`{not json`)); err == nil {
		t.Error("malformed JSON accepted")
	}
	if err := s.IngestJSON([]byte(`{"addr":"no-name:1"}`)); err == nil {
		t.Error("report without name accepted")
	}
}

func TestTextAndJSONFormats(t *testing.T) {
	s := NewServer(time.Minute)
	s.Ingest(Report{Name: "node1.nd.edu", Addr: "node1:9094", Owner: "hostname:node1", TotalBytes: 250 << 30, FreeBytes: 100 << 30})
	text := s.Text()
	if !strings.Contains(text, "node1.nd.edu") || !strings.Contains(text, "OWNER") {
		t.Errorf("text listing:\n%s", text)
	}
	data, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back []Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Name != "node1.nd.edu" {
		t.Errorf("json round trip = %+v", back)
	}
}

func TestHTTPEndpoints(t *testing.T) {
	s := NewServer(time.Minute)
	s.Ingest(Report{Name: "n1", Addr: "n1:9094"})
	srv := httptest.NewServer(s)
	defer srv.Close()

	for path, wantSub := range map[string]string{"/": "n1", "/json": `"name": "n1"`} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var buf [8192]byte
		n, _ := resp.Body.Read(buf[:])
		resp.Body.Close()
		if !strings.Contains(string(buf[:n]), wantSub) {
			t.Errorf("GET %s = %q, want %q inside", path, buf[:n], wantSub)
		}
	}
	resp, _ := srv.Client().Get(srv.URL + "/nope")
	if resp.StatusCode != 404 {
		t.Errorf("unknown path status = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestUDPIngestion(t *testing.T) {
	s := NewServer(time.Minute)
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.ServeUDP(pc)
	defer pc.Close()

	send := SendUDP(pc.LocalAddr().String())
	if err := send([]byte(`{"name":"udpnode","addr":"u:1"}`)); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(3 * time.Second)
	for {
		if _, ok := s.Lookup("udpnode"); ok {
			break
		}
		select {
		case <-deadline:
			t.Fatal("UDP report never arrived")
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func TestReporterFanOut(t *testing.T) {
	c1 := NewServer(time.Minute)
	c2 := NewServer(time.Minute)
	r := &Reporter{
		Describe: func() Report { return Report{Name: "fs1", Addr: "fs1:9094", FreeBytes: 42} },
		Send:     []func([]byte) error{SendLocal(c1), SendLocal(c2)},
	}
	if err := r.ReportOnce(); err != nil {
		t.Fatal(err)
	}
	for i, c := range []*Server{c1, c2} {
		if _, ok := c.Lookup("fs1"); !ok {
			t.Errorf("catalog %d missing report", i+1)
		}
	}
}

// One dead catalog must not prevent the others from being updated.
func TestReporterToleratesDeadCatalog(t *testing.T) {
	alive := NewServer(time.Minute)
	dead := func([]byte) error { return net.ErrClosed }
	r := &Reporter{
		Describe: func() Report { return Report{Name: "fs1"} },
		Send:     []func([]byte) error{dead, SendLocal(alive)},
	}
	if err := r.ReportOnce(); err == nil {
		t.Error("expected error from dead catalog")
	}
	if _, ok := alive.Lookup("fs1"); !ok {
		t.Error("live catalog starved by dead one")
	}
}

func TestReporterRunPeriodic(t *testing.T) {
	c := NewServer(time.Minute)
	count := 0
	r := &Reporter{
		Describe: func() Report { count++; return Report{Name: "fs1"} },
		Send:     []func([]byte) error{SendLocal(c)},
		Interval: 10 * time.Millisecond,
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { r.Run(stop); close(done) }()
	time.Sleep(60 * time.Millisecond)
	close(stop)
	<-done
	if count < 3 {
		t.Errorf("reported %d times in 60ms at 10ms interval", count)
	}
}

func TestClassAdsFormat(t *testing.T) {
	s := NewServer(time.Minute)
	s.Ingest(Report{Name: "n1", Addr: "n1:9094", Owner: "unix:alice", TotalBytes: 100})
	ads := s.ClassAds()
	for _, want := range []string{`Name = "n1"`, `Owner = "unix:alice"`, "TotalBytes = 100"} {
		if !strings.Contains(ads, want) {
			t.Errorf("classads missing %q:\n%s", want, ads)
		}
	}
	// Served over HTTP too.
	srv := httptest.NewServer(s)
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/classads")
	if err != nil {
		t.Fatal(err)
	}
	var buf [4096]byte
	n, _ := resp.Body.Read(buf[:])
	resp.Body.Close()
	if !strings.Contains(string(buf[:n]), `Name = "n1"`) {
		t.Errorf("/classads = %q", buf[:n])
	}
}
