// Quickstart: deploy a personal file server, connect a client, share
// space with another user via the reserve right, and read the data
// back through the adapter — the whole TSS loop in one process.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"tss"
)

func main() {
	// A user with nothing but a directory deploys a file server —
	// "a single command with no configuration" (§4). The simulated
	// network stands in for the campus LAN.
	exportDir, err := os.MkdirTemp("", "tss-quickstart-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(exportDir)

	nw := tss.NewSimNetwork()
	stop, err := tss.StartFileServerOn(nw, "desk.cse.nd.edu", exportDir, tss.FileServerOptions{
		Owner: "hostname:desk.cse.nd.edu",
		// Any campus machine may reserve a private workspace here,
		// but receives no rights at the top level itself.
		RootACL: map[string]string{"hostname:*.cse.nd.edu": "v(rwla)"},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer stop()
	fmt.Println("deployed file server desk.cse.nd.edu exporting", exportDir)

	// A visiting laptop connects and carves out its own space with
	// mkdir: the reserve right turns the new directory into a private
	// namespace owned by the caller.
	laptop, err := tss.DialSim(nw, "desk.cse.nd.edu", "laptop.cse.nd.edu")
	if err != nil {
		log.Fatal(err)
	}
	defer laptop.Close()
	who, _ := laptop.Whoami()
	fmt.Println("laptop authenticated as:", who)

	if err := laptop.Mkdir("/backup", 0o755); err != nil {
		log.Fatal(err)
	}
	if err := tss.WriteFile(laptop, "/backup/notes.txt", []byte("tactical storage works\n"), 0o644); err != nil {
		log.Fatal(err)
	}
	aclLines, _ := laptop.GetACL("/backup")
	fmt.Println("ACL of the reserved directory:")
	for _, l := range aclLines {
		fmt.Println("   ", l)
	}

	// Applications reach the server through the adapter, which maps
	// abstractions into a single namespace.
	a := tss.NewAdapter(tss.AdapterOptions{})
	if err := a.MountFS("/grid/desk", laptop); err != nil {
		log.Fatal(err)
	}
	data, err := tss.ReadFile(a, "/grid/desk/backup/notes.txt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back through the adapter: %s", data)

	// A stranger from outside the wildcard is kept out.
	evil, err := tss.DialSim(nw, "desk.cse.nd.edu", "evil.example.org")
	if err != nil {
		log.Fatal(err)
	}
	defer evil.Close()
	if _, err := tss.ReadFile(evil, "/backup/notes.txt"); tss.AsErrno(err) == tss.EACCES {
		fmt.Println("stranger denied:", err)
	} else {
		log.Fatalf("expected EACCES for the stranger, got %v", err)
	}
}
