// Hep reproduces the §8 scenario: the SP5 high-energy-physics
// simulation is shipped to a grid site and, through the adapter,
// securely reaches its home storage — scripts, dynamic libraries, and
// data — over the wide area, without any code changes or privileges
// at the execution site.
//
//	go run ./examples/hep
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"tss"
	"tss/internal/workload"
)

func main() {
	home, err := os.MkdirTemp("", "tss-hep-home-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(home)

	// The collaboration's home file server at the lab.
	nw := tss.NewSimNetwork()
	stop, err := tss.StartFileServerOn(nw, "storage.slac.example", home, tss.FileServerOptions{
		Owner: "hostname:storage.slac.example",
		// Only collaboration machines may touch the data.
		RootACL: map[string]string{"hostname:*.grid.example": "rwl"},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer stop()

	// Install the application at home, exactly once.
	installer, err := tss.DialSim(nw, "storage.slac.example", "admin.grid.example")
	if err != nil {
		log.Fatal(err)
	}
	cfg := workload.DefaultSP5()
	cfg.Libraries, cfg.ConfigFiles, cfg.Events = 60, 30, 10
	if err := workload.SetupSP5(installer, cfg); err != nil {
		log.Fatal(err)
	}
	installer.Close()
	fmt.Println("SP5 installed on the home server: scripts, libraries, configuration database")

	// A worker node somewhere on the grid: it has CPUs but no SP5
	// installation and no shared filesystem. The adapter attaches the
	// home CFS under the path the application expects.
	worker, err := tss.DialSim(nw, "storage.slac.example", "node77.grid.example")
	if err != nil {
		log.Fatal(err)
	}
	defer worker.Close()

	a := tss.NewAdapter(tss.AdapterOptions{})
	if err := a.MountFS("/cfs/storage.slac.example", worker); err != nil {
		log.Fatal(err)
	}
	view, err := tss.Subtree(a, "/cfs/storage.slac.example")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("running SP5 on the grid node against home storage...")
	start := time.Now()
	res, err := workload.RunSP5(view, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initialization: %v (loads %d libraries and %d config files over the grid)\n",
		res.InitTime.Round(time.Millisecond), cfg.Libraries, cfg.ConfigFiles)
	fmt.Printf("per event:      %v over %d events\n", res.TimePerEvent.Round(time.Millisecond), cfg.Events)
	fmt.Printf("total:          %v\n", time.Since(start).Round(time.Millisecond))

	// The outputs are already home: no stage-out step.
	fi, err := worker.Stat("/sp5/out/events.out")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("results on home storage: /sp5/out/events.out (%d bytes)\n", fi.Size)
}
