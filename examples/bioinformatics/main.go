// Bioinformatics reproduces the §9 scenario: a research group tracks
// molecular-simulation outputs in GEMS — a distributed shared database
// over many small file servers — with automatic replication to a
// storage budget, and auditor-driven repair after disks are lost.
//
//	go run ./examples/bioinformatics
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"

	"tss"
)

func main() {
	// Twelve little file servers: workstations, classroom machines, a
	// corner of a cluster — the paper's prototype pooled 120 of these.
	nw := tss.NewSimNetwork()
	var servers []tss.DataServer
	for i := 0; i < 12; i++ {
		name := fmt.Sprintf("ws%02d.bio.example", i)
		dir, err := os.MkdirTemp("", "tss-bio-")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		stop, err := tss.StartFileServerOn(nw, name, dir, tss.FileServerOptions{})
		if err != nil {
			log.Fatal(err)
		}
		defer stop()
		client, err := tss.DialSim(nw, name, name) // the owner itself
		if err != nil {
			log.Fatal(err)
		}
		defer client.Close()
		servers = append(servers, tss.DataServer{Name: name, FS: client, Dir: "/gems"})
	}

	db, err := tss.NewDSDB(servers)
	if err != nil {
		log.Fatal(err)
	}

	// A PROTOMOL campaign produces trajectories; each is entered into
	// GEMS with searchable attributes.
	for run := 0; run < 6; run++ {
		temp := fmt.Sprintf("%d", 300+10*run)
		payload := bytes.Repeat([]byte{byte(run + 1)}, 32<<10)
		id := fmt.Sprintf("villin-T%s", temp)
		if _, err := db.Put(id, map[string]string{
			"protein": "villin",
			"temp":    temp,
			"tool":    "protomol",
		}, payload); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("entered 6 trajectories into GEMS")

	// Preserve: replicate up to a 600 KB budget (≥3 copies each).
	repl := &tss.Replicator{DB: db, BudgetBytes: 600 << 10}
	steps, err := repl.Run()
	if err != nil {
		log.Fatal(err)
	}
	stored, _ := db.StoredBytes()
	fmt.Printf("replicator made %d copies; %d KB stored across the pool\n", steps, stored>>10)

	// Query like a scientist: all villin runs at 320 K.
	recs, err := db.Query(map[string]string{"protein": "villin", "temp": "320"})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range recs {
		fmt.Printf("query hit: %s, %d bytes, %d replicas\n", r.ID, r.Size, len(r.Replicas))
	}

	// A workstation owner reclaims their disk: every GEMS file there
	// is deleted. Independence (§3) says they may — and preservation
	// must cope.
	victim := servers[0]
	ents, _ := victim.FS.ReadDir("/gems")
	for _, e := range ents {
		victim.FS.Unlink("/gems/" + e.Name)
	}
	fmt.Printf("owner of %s evicted all GEMS data (%d files)\n", victim.Name, len(ents))

	auditor := &tss.Auditor{DB: db, VerifyContent: true}
	report, err := auditor.Audit()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("auditor: %d replicas checked, %d missing\n", report.ReplicasChecked, report.Missing)

	steps, err = repl.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replicator repaired with %d new copies\n", steps)

	// Everything still readable, checksums verified.
	all, _ := db.Index().List()
	for _, r := range all {
		if _, err := db.Read(r); err != nil {
			log.Fatalf("record %s lost: %v", r.ID, err)
		}
	}
	fmt.Println("all trajectories intact and checksum-verified")
}
