// Gridcache shows the "parasitic" deployment of §3-§5: a user gathers
// idle disks into a large scratch filesystem — discover servers
// through a catalog, assemble a distributed shared filesystem (DSFS),
// and use it from two independent clients, surviving the loss of a
// data server.
//
//	go run ./examples/gridcache
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"tss"
)

func main() {
	nw := tss.NewSimNetwork()
	cat := tss.NewCatalog(time.Minute)

	// Six cluster nodes submit file servers as ordinary jobs ("gliding
	// in"): each exports a scratch directory and reports to a catalog.
	var stops []func()
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("node%02d.cluster.example", i)
		dir, err := os.MkdirTemp("", "tss-gridcache-")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		stop, err := tss.StartFileServerOn(nw, name, dir, tss.FileServerOptions{
			// Anyone in the cluster may use the scratch pool.
			RootACL:         map[string]string{"hostname:*.cluster.example": "rwlda"},
			Catalogs:        []*tss.Catalog{cat},
			CatalogInterval: 50 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		stops = append(stops, stop)
		defer stop()
	}
	if !cat.WaitFor(6, 2*time.Second) { // first reports arrive
		log.Fatal("file servers never registered with the catalog")
	}

	// Discover what storage exists right now.
	fmt.Println("catalog listing:")
	fmt.Print(cat.Text())

	// Assemble a DSFS: node00 serves double duty as directory server
	// and data server; all six hold data.
	var meta *tss.Client
	var servers []tss.DataServer
	for _, rep := range cat.List() {
		client, err := tss.DialSim(nw, rep.Name, "alice-ws.cluster.example")
		if err != nil {
			log.Fatal(err)
		}
		defer client.Close()
		if meta == nil {
			meta = client
		}
		servers = append(servers, tss.DataServer{Name: rep.Name, FS: client, Dir: "/scratch-data"})
	}
	dsfs, err := tss.NewDSFS(meta, "/scratch-tree", servers, "alice-workstation")
	if err != nil {
		log.Fatal(err)
	}
	info, _ := dsfs.StatFS()
	fmt.Printf("assembled DSFS over %d servers, aggregate capacity %d GB\n",
		len(servers), info.TotalBytes>>30)

	// Fill it from one client.
	if err := tss.MkdirAll(dsfs, "/stage/run1", 0o755); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		name := fmt.Sprintf("/stage/run1/chunk%02d", i)
		if err := tss.WriteFile(dsfs, name, make([]byte, 64<<10), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("staged 12 chunks, spread round-robin over the pool")

	// A second, independent client mounts the same shared namespace —
	// that is what the S in DSFS buys over a DPFS.
	var servers2 []tss.DataServer
	var meta2 *tss.Client
	for _, rep := range cat.List() {
		client, err := tss.DialSim(nw, rep.Name, "bob-laptop.cluster.example")
		if err != nil {
			log.Fatal(err)
		}
		defer client.Close()
		if meta2 == nil {
			meta2 = client
		}
		servers2 = append(servers2, tss.DataServer{Name: rep.Name, FS: client, Dir: "/scratch-data"})
	}
	dsfs2, err := tss.NewDSFS(meta2, "/scratch-tree", servers2, "bob-laptop")
	if err != nil {
		log.Fatal(err)
	}
	ents, err := dsfs2.ReadDir("/stage/run1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("second client sees %d chunks through the shared directory tree\n", len(ents))

	// One node is reclaimed by its owner mid-run: the server goes away
	// and every connection to it drops. Failure coherence: the
	// namespace survives; only that node's chunks are unreachable.
	stops[5]()
	for _, s := range append(servers, servers2...) {
		if s.Name == "node05.cluster.example" {
			s.FS.(*tss.Client).Close()
		}
	}
	fmt.Println("node05 withdrawn from the pool")

	readable, unreachable := 0, 0
	for _, e := range ents {
		if _, err := tss.ReadFile(dsfs2, "/stage/run1/"+e.Name); err != nil {
			unreachable++
		} else {
			readable++
		}
	}
	fmt.Printf("after the loss: %d chunks readable, %d unreachable, directory still navigable\n",
		readable, unreachable)
}
