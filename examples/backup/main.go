// Backup demonstrates the distributed backup platform sketched in
// §10: "allowing cooperating users to easily record many backup
// images, thus allowing for on-line perusal, recovery, and forensic
// analysis of data over time." Snapshots of a working directory are
// recorded into a DSDB as immutable, replicated, attribute-indexed
// records; any file can be perused and recovered from any snapshot.
//
//	go run ./examples/backup
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"tss"
)

func main() {
	// The backup pool: a handful of cooperating users' file servers.
	var servers []tss.DataServer
	for i := 0; i < 5; i++ {
		dir, err := os.MkdirTemp("", "tss-backup-pool-")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		fs, err := tss.NewLocalFS(dir)
		if err != nil {
			log.Fatal(err)
		}
		servers = append(servers, tss.DataServer{Name: fmt.Sprintf("friend%d", i), FS: fs, Dir: "/backups"})
	}
	db, err := tss.NewDSDB(servers)
	if err != nil {
		log.Fatal(err)
	}

	// A working directory that evolves over time.
	work, err := os.MkdirTemp("", "tss-backup-work-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(work)
	write := func(name, content string) {
		if err := os.WriteFile(filepath.Join(work, name), []byte(content), 0o644); err != nil {
			log.Fatal(err)
		}
	}

	snapshot := func(tag string) {
		entries, err := os.ReadDir(work)
		if err != nil {
			log.Fatal(err)
		}
		n := 0
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			data, err := os.ReadFile(filepath.Join(work, e.Name()))
			if err != nil {
				log.Fatal(err)
			}
			id := fmt.Sprintf("%s@%s", e.Name(), tag)
			if _, err := db.Put(id, map[string]string{
				"file":     e.Name(),
				"snapshot": tag,
			}, data); err != nil {
				log.Fatal(err)
			}
			n++
		}
		fmt.Printf("snapshot %s: %d files recorded\n", tag, n)
	}

	// Day 1: initial state.
	write("thesis.tex", "\\title{Tactical Storage}\n% draft 1\n")
	write("data.csv", "run,value\n1,42\n")
	snapshot("day1")

	// Day 2: progress... and a regrettable edit.
	write("thesis.tex", "\\title{Tactical Storage}\n% draft 2, much better\n")
	write("data.csv", "run,value\n1,42\n2,17\n")
	snapshot("day2")

	// Day 3: catastrophe — the thesis is overwritten with garbage.
	write("thesis.tex", "TODO rewrite everything from scratch??\n")
	snapshot("day3")

	// Replicate every image across the pool for safety.
	repl := &tss.Replicator{DB: db, BudgetBytes: 1 << 20}
	steps, err := repl.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replicator added %d copies across %d servers\n", steps, len(servers))

	// Forensic analysis: every version of the thesis, over time.
	fmt.Println("\nhistory of thesis.tex:")
	recs, err := db.Query(map[string]string{"file": "thesis.tex"})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range recs {
		data, err := db.Read(r)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-16s %3d bytes, %d replicas: %.40q\n",
			r.Attrs["snapshot"], r.Size, len(r.Replicas), string(data))
	}

	// Recovery: restore day2's thesis over the day3 garbage.
	day2, err := db.Query(map[string]string{"file": "thesis.tex", "snapshot": "day2"})
	if err != nil || len(day2) != 1 {
		log.Fatalf("query: %v (%d hits)", err, len(day2))
	}
	data, err := db.Read(day2[0])
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(work, "thesis.tex"), data, 0o644); err != nil {
		log.Fatal(err)
	}
	restored, _ := os.ReadFile(filepath.Join(work, "thesis.tex"))
	fmt.Printf("\nrestored thesis.tex from day2: %q\n", string(restored))
}
