module tss

go 1.22
