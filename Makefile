GO ?= go

.PHONY: build test verify bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify runs the tier-1 gate (build + test) plus formatting, static
# analysis, and the full suite under the race detector.
verify: build
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./...

# bench runs the quick observability benchmark and captures the
# per-layer latency decomposition as a JSON artifact.
bench:
	$(GO) run ./cmd/tssbench -quick -json > BENCH_chirp.json
	@echo "wrote BENCH_chirp.json"
