GO ?= go
FUZZTIME ?= 10s

.PHONY: build test verify lint fuzz-short bench bench-cache chaos-short

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint runs tsslint, the repo-invariant static analyzer (see DESIGN.md
# §9 for the enforced invariants). -time prints the package count and
# wall-clock of the analysis to stderr so lint latency regressions are
# visible in every run; -unused fails stale //lint:ignore suppressions
# out of the tree instead of letting them rot.
lint:
	$(GO) run ./cmd/tsslint -time -unused ./...

# verify runs the tier-1 gate (build + test) plus formatting, static
# analysis (go vet and tsslint), and the full suite under the race
# detector.
verify: build lint
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./...

# fuzz-short runs every fuzz target for FUZZTIME each — a cheap gate
# that replays and extends the checked-in corpora for the wire parser,
# digest trailer codec, ACL grammar, and the software chroot.
fuzz-short:
	$(GO) test -run='^$$' -fuzz='^FuzzDecodeRequest$$' -fuzztime=$(FUZZTIME) ./internal/chirp/proto/
	$(GO) test -run='^$$' -fuzz='^FuzzEncodeDecode$$' -fuzztime=$(FUZZTIME) ./internal/chirp/proto/
	$(GO) test -run='^$$' -fuzz='^FuzzEscape$$' -fuzztime=$(FUZZTIME) ./internal/chirp/proto/
	$(GO) test -run='^$$' -fuzz='^FuzzDigestTrailer$$' -fuzztime=$(FUZZTIME) ./internal/chirp/proto/
	$(GO) test -run='^$$' -fuzz='^FuzzACLParse$$' -fuzztime=$(FUZZTIME) ./internal/acl/
	$(GO) test -run='^$$' -fuzz='^FuzzConfine$$' -fuzztime=$(FUZZTIME) ./internal/pathutil/

# bench runs the quick instrumented benchmarks — the per-layer latency
# decomposition and the transport-pool parallel-load comparison — and
# captures both as one JSON artifact.
bench:
	$(GO) run ./cmd/tssbench -quick -json > BENCH_chirp.json
	@echo "wrote BENCH_chirp.json"

# bench-cache runs the client-cache ablation at full size: the same
# attr/dirent/read syscall mix with the cache disabled, cold, and warm,
# reporting the RPC reduction and latency gain the caching tier buys.
# The quick variant of the same ablation also lands in BENCH_chirp.json
# under the "cache" key via `make bench`.
bench-cache:
	$(GO) run ./cmd/tssbench -run cache

# chaos-short runs the quick chaos sweep: every canned fault timeline
# (partitions, flapping, slowness, corruption, torn writes,
# crash/restart) executed against the full stack with the whole-stack
# invariant checkers armed — under the race detector, since the chaos
# engine is the densest concurrency workout in the repo. The rendered
# report lands in chaos_report.txt either way; on failure it carries
# the (timeline, seed, step) coordinates that replay each violation.
chaos-short:
	@$(GO) run -race ./cmd/tssbench -quick -run chaos > chaos_report.txt 2>&1; \
	status=$$?; cat chaos_report.txt; exit $$status
