// Package tss is the public API of the tactical storage system — a Go
// implementation of "Separating Abstractions from Resources in a
// Tactical Storage System" (Thain et al., SC 2005).
//
// A tactical storage system separates storage *resources* from storage
// *abstractions*. Resources are Chirp personal file servers that any
// user can deploy with one call and no privileges; abstractions are
// the structures users compose from them — a central filesystem (CFS),
// distributed private and shared filesystems (DPFS/DSFS), and a
// distributed shared database (DSDB/GEMS). An adapter attaches
// applications to abstractions transparently, with reconnection and
// stale-handle semantics.
//
// Everything speaks the same Unix-like interface, vfs.FileSystem —
// the paper's recursive storage abstraction — so a remote server, a
// local directory, a multi-server filesystem, and an adapter namespace
// are interchangeable.
//
// Quick start (one process, simulated network):
//
//	nw := tss.NewSimNetwork()
//	stop, _ := tss.StartFileServerOn(nw, "fs.sim", "/srv/export", tss.FileServerOptions{})
//	defer stop()
//	client, _ := tss.DialSim(nw, "fs.sim", "me")
//	a := tss.NewAdapter(tss.AdapterOptions{})
//	a.MountFS("/data", client)
//	f, _ := a.Open("/data/hello", tss.O_WRONLY|tss.O_CREAT, 0o644)
//	f.Pwrite([]byte("hi"), 0)
//	f.Close()
package tss

import (
	"net"
	"sort"
	"sync"
	"time"

	"tss/internal/abstraction"
	"tss/internal/acl"
	"tss/internal/adapter"
	"tss/internal/auth"
	"tss/internal/catalog"
	"tss/internal/chirp"
	"tss/internal/gems"
	"tss/internal/netsim"
	"tss/internal/vfs"
)

// Core interface and data types, re-exported from the vfs layer.
type (
	// FileSystem is the recursive Unix-like interface every layer
	// implements.
	FileSystem = vfs.FileSystem
	// File is an open file with positional I/O.
	File = vfs.File
	// FileInfo is portable stat metadata.
	FileInfo = vfs.FileInfo
	// DirEntry is one directory listing entry.
	DirEntry = vfs.DirEntry
	// FSInfo reports filesystem capacity.
	FSInfo = vfs.FSInfo
	// Errno is the portable error number model.
	Errno = vfs.Errno
)

// Open flags, as used by FileSystem.Open.
const (
	O_RDONLY = vfs.O_RDONLY
	O_WRONLY = vfs.O_WRONLY
	O_RDWR   = vfs.O_RDWR
	O_CREAT  = vfs.O_CREAT
	O_EXCL   = vfs.O_EXCL
	O_TRUNC  = vfs.O_TRUNC
	O_APPEND = vfs.O_APPEND
	O_SYNC   = vfs.O_SYNC
)

// Frequently tested error numbers.
const (
	ENOENT   = vfs.ENOENT
	EACCES   = vfs.EACCES
	EEXIST   = vfs.EEXIST
	ESTALE   = vfs.ESTALE
	ENOTCONN = vfs.ENOTCONN
)

// AsErrno extracts the protocol error number from any error.
func AsErrno(err error) Errno { return vfs.AsErrno(err) }

// NewLocalFS exports a host directory through the FileSystem
// interface, confined beneath root.
func NewLocalFS(root string) (FileSystem, error) { return vfs.NewLocalFS(root) }

// ReadFile, WriteFile and CopyFile are convenience helpers over any
// FileSystem.
var (
	ReadFile  = vfs.ReadFile
	WriteFile = vfs.WriteFile
	CopyFile  = vfs.CopyFile
	MkdirAll  = vfs.MkdirAll
)

// ---- Resource layer ----

// FileServerOptions configures a deployed file server.
type FileServerOptions struct {
	// Owner is the subject granted all rights on a fresh root
	// (default "hostname:<listen name>").
	Owner string
	// RootACL seeds additional root ACL entries, e.g.
	// {"hostname:*.cse.nd.edu": "v(rwl)"}.
	RootACL map[string]string
	// Catalogs lists in-process catalog servers to report to.
	Catalogs []*Catalog
	// CatalogInterval is the reporting period (default 15s).
	CatalogInterval time.Duration
	// TicketIssuers, when non-empty, additionally accepts the ticket
	// authentication method for tickets minted by these issuers.
	TicketIssuers []*TicketIssuer
}

// TicketIssuer mints bearer credentials for collaborators with no
// shared authentication infrastructure; see auth.TicketIssuer.
type TicketIssuer = auth.TicketIssuer

// NewTicketIssuer creates a ticket issuer. Install it in
// FileServerOptions.TicketIssuers on the servers that should accept
// its tickets, and mint with Issue.
func NewTicketIssuer() (*TicketIssuer, error) { return auth.NewTicketIssuer() }

// DialSimWithTicket connects to a file server on a simulated network
// authenticating with a minted ticket.
func DialSimWithTicket(nw *SimNetwork, serverName string, ticket *auth.AuthTicket, key []byte) (*Client, error) {
	return chirp.Dial(chirp.ClientConfig{
		Dial: func() (net.Conn, error) {
			return nw.DialFrom("ticket-holder", serverName, netsim.Loopback)
		},
		Credentials: []auth.Credential{&auth.TicketCredential{Ticket: ticket, Key: key}},
		Timeout:     30 * time.Second,
	})
}

// Catalog is a storage discovery catalog.
type Catalog = catalog.Server

// NewCatalog creates a catalog that evicts servers silent for timeout.
func NewCatalog(timeout time.Duration) *Catalog { return catalog.NewServer(timeout) }

// SimNetwork is an in-process network for single-process deployments,
// tests, and benchmarks.
type SimNetwork = netsim.Network

// NewSimNetwork creates an empty simulated network.
func NewSimNetwork() *SimNetwork { return netsim.NewNetwork() }

func buildServer(name, root string, opts FileServerOptions) (*chirp.Server, func() func(), error) {
	owner := opts.Owner
	if owner == "" {
		owner = "hostname:" + name
	}
	cfg := chirp.ServerConfig{
		Name:  name,
		Owner: auth.Subject(owner),
		Verifiers: []auth.Verifier{
			&auth.HostnameVerifier{},
			&auth.UnixVerifier{},
		},
	}
	if len(opts.TicketIssuers) > 0 {
		tv := &auth.TicketVerifier{}
		for _, ti := range opts.TicketIssuers {
			tv.Issuers = append(tv.Issuers, ti.PublicKey())
		}
		cfg.Verifiers = append(cfg.Verifiers, tv)
	}
	if len(opts.RootACL) > 0 {
		cfg.RootACL = aclFromMap(opts.RootACL)
	}
	srv, err := chirp.NewServer(root, cfg)
	if err != nil {
		return nil, nil, err
	}
	startReporter := func() func() {
		if len(opts.Catalogs) == 0 {
			return func() {}
		}
		var sends []func([]byte) error
		for _, c := range opts.Catalogs {
			sends = append(sends, catalog.SendLocal(c))
		}
		rep := &catalog.Reporter{
			Describe: func() catalog.Report {
				n, o, info, rootACL := srv.Describe()
				return catalog.Report{
					Name: n, Addr: n, Owner: o,
					TotalBytes: info.TotalBytes, FreeBytes: info.FreeBytes,
					RootACL: rootACL,
				}
			},
			Send:     sends,
			Interval: opts.CatalogInterval,
		}
		stop := make(chan struct{})
		go rep.Run(stop)
		return func() { close(stop) }
	}
	return srv, startReporter, nil
}

// StartFileServerOn deploys a Chirp file server exporting root on a
// simulated network under the given name — the paper's "single
// command with no configuration" deployment. The returned function
// stops the server.
func StartFileServerOn(nw *SimNetwork, name, root string, opts FileServerOptions) (stop func(), err error) {
	srv, startReporter, err := buildServer(name, root, opts)
	if err != nil {
		return nil, err
	}
	l, err := nw.Listen(name)
	if err != nil {
		return nil, err
	}
	go srv.Serve(l)
	stopRep := startReporter()
	var once sync.Once
	return func() { once.Do(func() { stopRep(); l.Close() }) }, nil
}

// StartFileServerTCP deploys a file server on a TCP address.
func StartFileServerTCP(addr, root string, opts FileServerOptions) (stop func(), actualAddr string, err error) {
	srv, startReporter, err := buildServer(addr, root, opts)
	if err != nil {
		return nil, "", err
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	go srv.Serve(l)
	stopRep := startReporter()
	var once sync.Once
	return func() { once.Do(func() { stopRep(); l.Close() }) }, l.Addr().String(), nil
}

// Client is a connection to one file server; it implements FileSystem.
type Client = chirp.Client

// DialSim connects to a file server on a simulated network, presenting
// clientName as the host identity.
func DialSim(nw *SimNetwork, serverName, clientName string) (*Client, error) {
	return chirp.Dial(chirp.ClientConfig{
		Dial: func() (net.Conn, error) {
			return nw.DialFrom(clientName, serverName, netsim.Loopback)
		},
		Credentials: []auth.Credential{auth.HostnameCredential{}, auth.UnixCredential{}},
		Timeout:     30 * time.Second,
	})
}

// DialTCP connects to a file server over TCP with the default
// credential set (hostname, unix).
func DialTCP(addr string) (*Client, error) {
	return chirp.DialTCP(addr,
		[]auth.Credential{auth.HostnameCredential{}, auth.UnixCredential{}},
		30*time.Second)
}

// ClientPool is a multi-connection transport to one file server; it
// implements FileSystem with the same semantics as Client but keeps up
// to PoolSize authenticated connections, so concurrent operations no
// longer serialize on a single socket. Descriptor I/O stays pinned to
// the connection that opened the file.
type ClientPool = chirp.Pool

// DialSimPool connects a pool of up to size connections to a file
// server on a simulated network.
func DialSimPool(nw *SimNetwork, serverName, clientName string, size int) (*ClientPool, error) {
	return chirp.NewPool(chirp.ClientConfig{
		Dial: func() (net.Conn, error) {
			return nw.DialFrom(clientName, serverName, netsim.Loopback)
		},
		Credentials: []auth.Credential{auth.HostnameCredential{}, auth.UnixCredential{}},
		Timeout:     30 * time.Second,
		PoolSize:    size,
	})
}

// DialTCPPool connects a pool of up to size connections to a file
// server over TCP with the default credential set.
func DialTCPPool(addr string, size int) (*ClientPool, error) {
	return chirp.NewPool(chirp.ClientConfig{
		Dial:        func() (net.Conn, error) { return net.DialTimeout("tcp", addr, 10*time.Second) },
		Credentials: []auth.Credential{auth.HostnameCredential{}, auth.UnixCredential{}},
		Timeout:     30 * time.Second,
		PoolSize:    size,
	})
}

// ---- Abstraction layer ----

// DataServer names one storage resource inside an abstraction.
type DataServer = abstraction.DataServer

// NewCFS wraps a server connection as the central filesystem.
func NewCFS(name string, fs FileSystem) *abstraction.CFS {
	return abstraction.NewCFS(name, fs)
}

// NewDPFS builds a distributed private filesystem: metadata in a
// filesystem private to the caller, data across servers.
func NewDPFS(meta FileSystem, servers []DataServer, clientID string) (FileSystem, error) {
	return abstraction.NewDPFS(meta, servers, abstraction.Options{ClientID: clientID})
}

// NewDSFS builds a distributed shared filesystem: metadata on a file
// server too, so multiple clients share one namespace.
func NewDSFS(metaServer FileSystem, metaDir string, servers []DataServer, clientID string) (FileSystem, error) {
	return abstraction.NewDSFS(metaServer, metaDir, servers, abstraction.Options{ClientID: clientID})
}

// NewDSDB builds a distributed shared database over the given servers
// with an in-memory index.
func NewDSDB(servers []DataServer) (*gems.DSDB, error) {
	return gems.NewDSDB(gems.NewMemIndex(), servers)
}

// NewMirror transparently replicates across filesystems (§10:
// "filesystems that transparently ... replicate ... data"): writes fan
// out to every reachable replica, reads come from the first.
func NewMirror(replicas ...FileSystem) (FileSystem, error) {
	return abstraction.NewMirror(replicas...)
}

// MirrorOptions tunes a mirror's resilience machinery: circuit-breaker
// thresholds and re-probe schedule, the hedged-read delay, and the
// health probe issued to demoted replicas.
type MirrorOptions = abstraction.MirrorOptions

// MirrorFS is the replicating filesystem returned by NewMirrorOptions;
// beyond FileSystem it exposes Health() and resilience counters.
type MirrorFS = abstraction.MirrorFS

// NewMirrorOptions builds a mirror with explicit resilience options:
// per-replica circuit breakers stop reads from paying a dead replica's
// timeout, background half-open probes re-admit recovered replicas,
// and an optional hedge races a second replica after a latency
// threshold (§6: recovery without manual intervention).
func NewMirrorOptions(opts MirrorOptions, replicas ...FileSystem) (*MirrorFS, error) {
	return abstraction.NewMirrorOptions(opts, replicas...)
}

// NewStriped stripes file data across servers in fixed-size blocks
// (§10: "filesystems that transparently stripe ... data"), reading and
// writing all members concurrently.
func NewStriped(meta FileSystem, servers []DataServer, stripeSize int64, clientID string) (FileSystem, error) {
	return abstraction.NewStriped(meta, servers, abstraction.StripeOptions{
		StripeSize: stripeSize,
		ClientID:   clientID,
	})
}

// SyncReplica copies everything under root from src to dst — the
// manual repair path for a mirror replica that was down during writes.
func SyncReplica(dst, src FileSystem, root string) error {
	return abstraction.Sync(dst, src, root)
}

// FsckReport summarizes a distributed-filesystem check.
type FsckReport = abstraction.FsckReport

// Fsck cross-checks a DPFS/DSFS built by NewDPFS/NewDSFS: dangling
// stubs and orphaned data are reported and, when repair is true,
// removed (§5's manual recovery, automated).
func Fsck(fs FileSystem, repair bool) (*FsckReport, error) {
	d, ok := fs.(*abstraction.Dist)
	if !ok {
		return nil, vfs.EINVAL
	}
	return d.Fsck(abstraction.FsckOptions{RemoveDangling: repair, RemoveOrphans: repair})
}

// RecoverIndex rebuilds a DSDB index by rescanning server data (§9:
// "the database could even be recovered automatically by rescanning
// the existing file data").
func RecoverIndex(servers []DataServer) (gems.Index, error) {
	return gems.RecoverIndex(servers)
}

// NewDSDBWithIndex builds a DSDB over an existing index — e.g. one
// returned by RecoverIndex or a remote gems.DBClient.
func NewDSDBWithIndex(idx gems.Index, servers []DataServer) (*gems.DSDB, error) {
	return gems.NewDSDB(idx, servers)
}

// GEMS types for preservation workflows.
type (
	// DSDB is the distributed shared database.
	DSDB = gems.DSDB
	// Record is one indexed dataset entry.
	Record = gems.Record
	// Auditor verifies replica location and integrity.
	Auditor = gems.Auditor
	// Replicator fills a storage budget with copies.
	Replicator = gems.Replicator
)

// ---- Adapter ----

// AdapterOptions configures the application adapter.
type AdapterOptions struct {
	// Sync appends O_SYNC to all opens.
	Sync bool
	// MaxRetries bounds reconnection attempts (default 5).
	MaxRetries int
}

// Adapter assembles abstractions into one namespace with transparent
// recovery; it implements FileSystem.
type Adapter = adapter.Adapter

// NewAdapter creates an adapter.
func NewAdapter(opts AdapterOptions) *Adapter {
	return adapter.New(adapter.Config{
		Sync:       opts.Sync,
		MaxRetries: opts.MaxRetries,
	})
}

// NewCatalogAdapter creates an adapter whose default namespace
// resolves /chirp/<name>/... by looking the server up in the catalog
// and dialing it on the simulated network — discovery-driven access,
// the way the paper's tools find storage at run time (§4).
func NewCatalogAdapter(opts AdapterOptions, cat *Catalog, nw *SimNetwork, clientName string) *Adapter {
	return adapter.New(adapter.Config{
		Sync:       opts.Sync,
		MaxRetries: opts.MaxRetries,
		Resolve: func(scheme, host string) (vfs.FileSystem, error) {
			if scheme != "chirp" {
				return nil, vfs.ENOENT
			}
			rep, ok := cat.Lookup(host)
			if !ok {
				return nil, vfs.ENOENT
			}
			return DialSim(nw, rep.Addr, clientName)
		},
	})
}

// Subtree exposes a subdirectory of any filesystem as a filesystem.
func Subtree(fs FileSystem, prefix string) (FileSystem, error) {
	return vfs.Subtree(fs, prefix)
}

// aclFromMap builds an ACL from subject -> rights-spec pairs, e.g.
// {"hostname:*.cse.nd.edu": "v(rwl)"}. Invalid specs are skipped.
func aclFromMap(m map[string]string) *acl.List {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	l := &acl.List{}
	for _, subj := range keys {
		rights, reserve, err := acl.ParseSpec(m[subj])
		if err != nil {
			continue
		}
		l.Set(subj, rights, reserve)
	}
	return l
}
