// Package clitest builds the real command binaries and drives them
// end to end over TCP loopback: a catalog, a file server reporting to
// it, the tss client tool, and the tssfs DSFS tool — the full §4
// deployment story as a test.
package clitest

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var binDir string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "tss-cli-bin-")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	binDir = dir
	for _, tool := range []string{"chirpd", "catalogd", "tss", "tssfs", "tssh", "gems", "tssticket"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "tss/cmd/"+tool)
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			fmt.Fprintf(os.Stderr, "building %s: %v\n", tool, err)
			os.Exit(1)
		}
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func bin(name string) string { return filepath.Join(binDir, name) }

// freePort reserves a TCP port on loopback.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// startDaemon launches a binary and kills it at cleanup.
func startDaemon(t *testing.T, name string, args ...string) {
	t.Helper()
	cmd := exec.Command(bin(name), args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
}

// waitTCP blocks until the address accepts connections.
func waitTCP(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		c, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err == nil {
			c.Close()
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("%s never came up", addr)
}

func run(t *testing.T, name string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin(name), args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
	}
	return string(out)
}

func runExpectFail(t *testing.T, name string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin(name), args...).CombinedOutput()
	if err == nil {
		t.Fatalf("%s %v unexpectedly succeeded:\n%s", name, args, out)
	}
	return string(out)
}

func TestFileServerAndClientTool(t *testing.T) {
	root := t.TempDir()
	addr := freePort(t)
	user := os.Getenv("USER")
	if user == "" {
		user = "root"
	}
	startDaemon(t, "chirpd",
		"-root", root,
		"-addr", addr,
		"-acl", "hostname:localhost=rwlda",
		"-acl", "unix:"+user+"=rwlda",
	)
	waitTCP(t, addr)

	// whoami: loopback resolves to the localhost subject.
	who := run(t, "tss", "whoami", addr)
	if !strings.Contains(who, "hostname:localhost") && !strings.Contains(who, "unix:") {
		t.Errorf("whoami = %q", who)
	}

	// put / ls / cat / get / stat round trip.
	local := filepath.Join(t.TempDir(), "up.txt")
	if err := os.WriteFile(local, []byte("over the wire\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	run(t, "tss", "mkdir", addr, "/inbox")
	run(t, "tss", "put", addr, "/inbox/up.txt", local)
	if ls := run(t, "tss", "ls", addr, "/inbox"); !strings.Contains(ls, "up.txt") {
		t.Errorf("ls = %q", ls)
	}
	if cat := run(t, "tss", "cat", addr, "/inbox/up.txt"); cat != "over the wire\n" {
		t.Errorf("cat = %q", cat)
	}
	down := filepath.Join(t.TempDir(), "down.txt")
	run(t, "tss", "get", addr, "/inbox/up.txt", down)
	got, _ := os.ReadFile(down)
	if string(got) != "over the wire\n" {
		t.Errorf("get = %q", got)
	}
	if st := run(t, "tss", "stat", addr, "/inbox/up.txt"); !strings.Contains(st, "size=14") {
		t.Errorf("stat = %q", st)
	}

	// ACL management through the tool.
	run(t, "tss", "setacl", addr, "/inbox", "hostname:*.collab.org", "rl")
	if acl := run(t, "tss", "getacl", addr, "/inbox"); !strings.Contains(acl, "hostname:*.collab.org rl") {
		t.Errorf("getacl = %q", acl)
	}

	// statfs and cleanup paths.
	if sf := run(t, "tss", "statfs", addr); !strings.Contains(sf, "total") {
		t.Errorf("statfs = %q", sf)
	}
	run(t, "tss", "mv", addr, "/inbox/up.txt", "/inbox/moved.txt")
	run(t, "tss", "rm", addr, "/inbox/moved.txt")
	run(t, "tss", "rmdir", addr, "/inbox")
	runExpectFail(t, "tss", "cat", addr, "/inbox/moved.txt")
}

func TestCatalogReporting(t *testing.T) {
	udpAddr := freePort(t)
	httpAddr := freePort(t)
	startDaemon(t, "catalogd", "-udp", udpAddr, "-http", httpAddr)

	root := t.TempDir()
	fsAddr := freePort(t)
	startDaemon(t, "chirpd",
		"-root", root,
		"-addr", fsAddr,
		"-name", "cli-test-server",
		"-catalog", udpAddr,
		"-catalog-interval", "100ms",
	)
	waitTCP(t, fsAddr)

	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get("http://" + httpAddr + "/")
		if err == nil {
			buf := make([]byte, 1<<16)
			n, _ := resp.Body.Read(buf)
			resp.Body.Close()
			if strings.Contains(string(buf[:n]), "cli-test-server") {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("server never appeared in the catalog listing")
		}
		time.Sleep(100 * time.Millisecond)
	}
	// JSON and classads formats also answer.
	for _, path := range []string{"/json", "/classads"} {
		resp, err := http.Get("http://" + httpAddr + path)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 1<<16)
		n, _ := resp.Body.Read(buf)
		resp.Body.Close()
		if !strings.Contains(string(buf[:n]), "cli-test-server") {
			t.Errorf("%s missing server: %q", path, buf[:n])
		}
	}
}

func TestTssfsAssemblesDSFS(t *testing.T) {
	user := os.Getenv("USER")
	if user == "" {
		user = "root"
	}
	aclArgs := []string{"-acl", "hostname:localhost=rwlda", "-acl", "unix:" + user + "=rwlda"}

	var addrs []string
	for i := 0; i < 3; i++ {
		addr := freePort(t)
		args := append([]string{"-root", t.TempDir(), "-addr", addr}, aclArgs...)
		startDaemon(t, "chirpd", args...)
		addrs = append(addrs, addr)
	}
	for _, a := range addrs {
		waitTCP(t, a)
	}
	base := []string{
		"-meta", addrs[0] + "/tree",
		"-data", "n0=" + addrs[0] + "/vol",
		"-data", "n1=" + addrs[1] + "/vol",
		"-data", "n2=" + addrs[2] + "/vol",
	}
	tssfs := func(args ...string) string {
		return run(t, "tssfs", append(append([]string{}, base...), args...)...)
	}

	local := filepath.Join(t.TempDir(), "chunk.bin")
	if err := os.WriteFile(local, []byte(strings.Repeat("spread me ", 100)), 0o644); err != nil {
		t.Fatal(err)
	}
	tssfs("mkdir", "/run1")
	tssfs("put", "/run1/chunk.bin", local)
	if ls := tssfs("ls", "/run1"); !strings.Contains(ls, "chunk.bin") {
		t.Errorf("tssfs ls = %q", ls)
	}
	if st := tssfs("stat", "/run1/chunk.bin"); !strings.Contains(st, "data on n") {
		t.Errorf("tssfs stat = %q", st)
	}
	out := filepath.Join(t.TempDir(), "back.bin")
	tssfs("get", "/run1/chunk.bin", out)
	got, _ := os.ReadFile(out)
	if len(got) != 1000 {
		t.Errorf("tssfs get = %d bytes", len(got))
	}
	if fsck := tssfs("fsck"); !strings.Contains(fsck, "dangling=0 orphaned=0") {
		t.Errorf("tssfs fsck = %q", fsck)
	}
	if sf := tssfs("statfs"); !strings.Contains(sf, "over 3 servers") {
		t.Errorf("tssfs statfs = %q", sf)
	}
	tssfs("rm", "/run1/chunk.bin")
	tssfs("rmdir", "/run1")
}

func TestTsshScripted(t *testing.T) {
	user := os.Getenv("USER")
	if user == "" {
		user = "root"
	}
	addr := freePort(t)
	startDaemon(t, "chirpd",
		"-root", t.TempDir(), "-addr", addr,
		"-acl", "hostname:localhost=rwlda", "-acl", "unix:"+user+"=rwlda")
	waitTCP(t, addr)

	local := filepath.Join(t.TempDir(), "up.bin")
	if err := os.WriteFile(local, []byte("shell payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	down := filepath.Join(t.TempDir(), "down.bin")
	script := strings.Join([]string{
		"mount /srv chirp://" + addr,
		"mounts",
		"cd /srv",
		"mkdir docs",
		"put " + local + " docs/up.bin",
		"ls docs",
		"stat docs/up.bin",
		"cat docs/up.bin",
		"get docs/up.bin " + down,
		"mv docs/up.bin docs/renamed.bin",
		"rm docs/renamed.bin",
		"rmdir docs",
		"pwd",
		"df",
		"exit",
	}, "\n") + "\n"

	cmd := exec.Command(bin("tssh"))
	cmd.Stdin = strings.NewReader(script)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("tssh script failed: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{"mounted chirp://", "up.bin", "size=13", "shell payload", "/srv"} {
		if !strings.Contains(s, want) {
			t.Errorf("tssh output missing %q:\n%s", want, s)
		}
	}
	got, err := os.ReadFile(down)
	if err != nil || string(got) != "shell payload" {
		t.Errorf("get through shell = %q, %v", got, err)
	}
}

func TestGemsCLI(t *testing.T) {
	user := os.Getenv("USER")
	if user == "" {
		user = "root"
	}
	aclArgs := []string{"-acl", "hostname:localhost=rwlda", "-acl", "unix:" + user + "=rwlda"}
	var addrs []string
	for i := 0; i < 2; i++ {
		addr := freePort(t)
		args := append([]string{"-root", t.TempDir(), "-addr", addr}, aclArgs...)
		startDaemon(t, "chirpd", args...)
		addrs = append(addrs, addr)
	}
	for _, a := range addrs {
		waitTCP(t, a)
	}
	indexDir := t.TempDir()
	base := []string{
		"-index", indexDir,
		"-data", "d0=" + addrs[0] + "/gems",
		"-data", "d1=" + addrs[1] + "/gems",
	}
	gemsRun := func(stdin string, args ...string) string {
		cmd := exec.Command(bin("gems"), append(append([]string{}, base...), args...)...)
		if stdin != "" {
			cmd.Stdin = strings.NewReader(stdin)
		}
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("gems %v: %v\n%s", args, err, out)
		}
		return string(out)
	}

	gemsRun("trajectory bits", "put", "sim042", "protein=villin", "temp=300")
	if q := gemsRun("", "query", "protein=villin"); !strings.Contains(q, "sim042") {
		t.Errorf("query = %q", q)
	}
	if got := gemsRun("", "get", "sim042"); got != "trajectory bits" {
		t.Errorf("get = %q", got)
	}
	if a := gemsRun("", "audit"); !strings.Contains(a, "0 missing") {
		t.Errorf("audit = %q", a)
	}
	if r := gemsRun("", "replicate", "1000000"); !strings.Contains(r, "made 1 copies") {
		t.Errorf("replicate = %q", r)
	}
	// The journal persists across invocations (each CLI call reopens it).
	if l := gemsRun("", "list"); !strings.Contains(l, "2 replicas") {
		t.Errorf("list = %q", l)
	}
	// Wipe the index and recover from the pool.
	os.RemoveAll(indexDir)
	if rec := gemsRun("", "recover"); !strings.Contains(rec, "recovered 1 records") {
		t.Errorf("recover = %q", rec)
	}
	if got := gemsRun("", "get", "sim042"); got != "trajectory bits" {
		t.Errorf("get after recover = %q", got)
	}
	gemsRun("", "rm", "sim042")
	if l := gemsRun("", "list"); strings.Contains(l, "sim042") {
		t.Errorf("rm did not remove: %q", l)
	}
}

// The full ticket flow through the CLIs: keygen, issue, a server that
// trusts the issuer, and a client authenticating by ticket alone.
func TestTicketFlow(t *testing.T) {
	dir := t.TempDir()
	issuerFile := filepath.Join(dir, "issuer.json")
	out := run(t, "tssticket", "keygen", issuerFile)
	if !strings.Contains(out, "public key:") {
		t.Fatalf("keygen output = %q", out)
	}
	pub := strings.TrimSpace(run(t, "tssticket", "pubkey", issuerFile))

	ticketFile := filepath.Join(dir, "collab.ticket")
	run(t, "tssticket", "issue", issuerFile, "collab-7", "1h", ticketFile)
	if show := run(t, "tssticket", "show", ticketFile); !strings.Contains(show, "ticket:collab-7") {
		t.Errorf("show = %q", show)
	}

	addr := freePort(t)
	startDaemon(t, "chirpd",
		"-root", t.TempDir(), "-addr", addr,
		"-acl", "ticket:collab-*=rwl",
		"-ticket-issuer", pub,
	)
	waitTCP(t, addr)

	// Ticket-only rights: whoami shows the ticket subject, write works.
	who := run(t, "tss", "-ticket", ticketFile, "whoami", addr)
	if !strings.Contains(who, "ticket:collab-7") {
		t.Errorf("whoami = %q", who)
	}
	local := filepath.Join(dir, "f.txt")
	os.WriteFile(local, []byte("ticketed"), 0o644)
	run(t, "tss", "-ticket", ticketFile, "mkdir", addr, "/drop")
	run(t, "tss", "-ticket", ticketFile, "put", addr, "/drop/f.txt", local)
	if cat := run(t, "tss", "-ticket", ticketFile, "cat", addr, "/drop/f.txt"); cat != "ticketed" {
		t.Errorf("cat = %q", cat)
	}
	// Without the ticket the client falls back to hostname/unix, which
	// this server's ACL does not admit.
	runExpectFail(t, "tss", "cat", addr, "/drop/f.txt")
}
