// Tssticket manages ticket credentials: self-contained bearer
// credentials a storage owner mints for collaborators who share no
// authentication infrastructure with them.
//
//	# the owner creates an issuing keypair once
//	tssticket keygen issuer.json
//	tssticket pubkey issuer.json          # hex key for chirpd -ticket-issuer
//
//	# mint a ticket for a collaborator (writes collab.ticket)
//	tssticket issue issuer.json collab-7 720h collab.ticket
//
//	# the collaborator uses it
//	tss -ticket collab.ticket ls host:9094 /
//	tssticket show collab.ticket
package main

import (
	"encoding/hex"
	"fmt"
	"os"
	"time"

	"tss/internal/auth"
)

func usage() {
	fmt.Fprintln(os.Stderr, `usage: tssticket keygen ISSUERFILE
       tssticket pubkey ISSUERFILE
       tssticket issue ISSUERFILE SUBJECT LIFETIME TICKETFILE
       tssticket show TICKETFILE`)
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "keygen":
		if len(os.Args) != 3 {
			usage()
		}
		issuer, err := auth.NewTicketIssuer()
		if err != nil {
			fatal(err)
		}
		data, err := issuer.Export()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(os.Args[2], data, 0o600); err != nil {
			fatal(err)
		}
		fmt.Printf("issuer keypair written to %s\npublic key: %s\n",
			os.Args[2], hex.EncodeToString(issuer.PublicKey()))

	case "pubkey":
		if len(os.Args) != 3 {
			usage()
		}
		issuer := loadIssuer(os.Args[2])
		fmt.Println(hex.EncodeToString(issuer.PublicKey()))

	case "issue":
		if len(os.Args) != 6 {
			usage()
		}
		issuer := loadIssuer(os.Args[2])
		lifetime, err := time.ParseDuration(os.Args[4])
		if err != nil {
			fatal(fmt.Errorf("bad lifetime %q: %w", os.Args[4], err))
		}
		ticket, key, err := issuer.Issue(os.Args[3], lifetime)
		if err != nil {
			fatal(err)
		}
		data, err := auth.ExportBearer(ticket, key)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(os.Args[5], data, 0o600); err != nil {
			fatal(err)
		}
		fmt.Printf("ticket for %q valid until %s written to %s\n",
			"ticket:"+os.Args[3], time.Unix(ticket.NotAfter, 0).Format(time.RFC3339), os.Args[5])

	case "show":
		if len(os.Args) != 3 {
			usage()
		}
		data, err := os.ReadFile(os.Args[2])
		if err != nil {
			fatal(err)
		}
		cred, err := auth.ImportBearer(data)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("subject: ticket:%s\nexpires: %s\n",
			cred.Ticket.Subject, time.Unix(cred.Ticket.NotAfter, 0).Format(time.RFC3339))

	default:
		usage()
	}
}

func loadIssuer(path string) *auth.TicketIssuer {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	issuer, err := auth.ImportTicketIssuer(data)
	if err != nil {
		fatal(err)
	}
	return issuer
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tssticket: %v\n", err)
	os.Exit(1)
}
