// Tssfs assembles a distributed shared filesystem (DSFS) from running
// Chirp servers and operates on it — the user-built abstraction of §5
// as a command.
//
//	tssfs -meta meta.host:9094/tree \
//	      -data n0=host0:9094/vol -data n1=host1:9094/vol \
//	      ls /
//
// Commands: ls, cat, put, get, mkdir, rm, rmdir, mv, stat, statfs,
// fsck, repair.
package main

import (
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"tss/internal/abstraction"
	"tss/internal/auth"
	"tss/internal/cache"
	"tss/internal/chirp"
	"tss/internal/vfs"
)

func usage() {
	fmt.Fprintln(os.Stderr, `usage: tssfs -meta host:port/dir [-data name=host:port/dir]... [-cache] [-attr-ttl DUR] [-wb] <command> [args]
commands: ls|cat|stat|rm|rmdir DIR, put REMOTE LOCAL, get REMOTE LOCAL,
          mkdir DIR, mv OLD NEW, statfs, fsck, repair
  -cache         cache attrs, dirents, and pages client-side (TTL-expired:
                 the DSFS abstraction grants no leases)
  -attr-ttl DUR  cache: attr/dirent time-to-live (default 2s)
  -wb            cache: buffer writes for write-back instead of writing through`)
	os.Exit(2)
}

// endpoint is host:port plus a directory on that server.
type endpoint struct {
	addr string
	dir  string
}

func parseEndpoint(s string) (endpoint, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return endpoint{addr: s, dir: "/"}, nil
	}
	return endpoint{addr: s[:slash], dir: s[slash:]}, nil
}

func dial(addr string) (*chirp.Client, error) {
	return chirp.DialTCP(addr, []auth.Credential{
		auth.HostnameCredential{},
		auth.UnixCredential{},
	}, 30*time.Second)
}

func main() {
	// Flags appear before the command; parse by hand so -data repeats.
	args := os.Args[1:]
	var metaSpec string
	type dataSpec struct{ name, spec string }
	var dataSpecs []dataSpec
	cacheOn := false
	writeBack := false
	var attrTTL time.Duration
	for len(args) > 0 && strings.HasPrefix(args[0], "-") {
		switch args[0] {
		case "-meta":
			if len(args) < 2 {
				usage()
			}
			metaSpec = args[1]
			args = args[2:]
		case "-data":
			if len(args) < 2 {
				usage()
			}
			name, spec, ok := strings.Cut(args[1], "=")
			if !ok {
				usage()
			}
			dataSpecs = append(dataSpecs, dataSpec{name, spec})
			args = args[2:]
		case "-cache":
			cacheOn = true
			args = args[1:]
		case "-wb":
			writeBack = true
			args = args[1:]
		case "-attr-ttl":
			if len(args) < 2 {
				usage()
			}
			var err error
			if attrTTL, err = time.ParseDuration(args[1]); err != nil {
				fatal(fmt.Errorf("-attr-ttl %s: %w", args[1], err))
			}
			args = args[2:]
		default:
			usage()
		}
	}
	if metaSpec == "" || len(dataSpecs) == 0 || len(args) == 0 {
		usage()
	}

	metaEP, err := parseEndpoint(metaSpec)
	if err != nil {
		fatal(err)
	}
	metaClient, err := dial(metaEP.addr)
	if err != nil {
		fatal(fmt.Errorf("meta server %s: %w", metaEP.addr, err))
	}
	defer metaClient.Close()

	var servers []abstraction.DataServer
	for _, ds := range dataSpecs {
		ep, err := parseEndpoint(ds.spec)
		if err != nil {
			fatal(err)
		}
		cli, err := dial(ep.addr)
		if err != nil {
			fatal(fmt.Errorf("data server %s (%s): %w", ds.name, ep.addr, err))
		}
		defer cli.Close()
		servers = append(servers, abstraction.DataServer{Name: ds.name, FS: cli, Dir: ep.dir})
	}

	host, _ := os.Hostname()
	d, err := abstraction.NewDSFS(metaClient, metaEP.dir, servers, abstraction.Options{ClientID: host})
	if err != nil {
		fatal(err)
	}

	// With -cache, namespace and data operations go through the caching
	// tier over the whole DSFS; the abstraction grants no leases, so
	// entries expire on the attr TTL alone. The DSFS-specific verbs
	// (fsck, repair, the stub probe under stat) keep the raw view.
	var view vfs.FileSystem = d
	if cacheOn {
		cfs := cache.New(d, cache.Options{
			AttrTTL:      attrTTL,
			WriteThrough: !writeBack,
		})
		defer cfs.Close()
		view = cfs
	}

	cmd, rest := args[0], args[1:]
	need := func(n int) {
		if len(rest) != n {
			usage()
		}
	}
	switch cmd {
	case "ls":
		need(1)
		ents, err := view.ReadDir(rest[0])
		if err != nil {
			fatal(err)
		}
		for _, e := range ents {
			kind := "-"
			if e.IsDir {
				kind = "d"
			}
			fmt.Printf("%s %s\n", kind, e.Name)
		}
	case "cat":
		need(1)
		if err := stream(os.Stdout, view, rest[0]); err != nil {
			fatal(err)
		}
	case "stat":
		need(1)
		fi, err := view.Stat(rest[0])
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s size=%d dir=%v\n", fi.Name, fi.Size, fi.IsDir)
		if !fi.IsDir {
			stub, err := d.ReadStub(rest[0])
			if err == nil {
				fmt.Printf("data on %s at %s\n", stub.Server, stub.Path)
			}
		}
	case "put":
		need(2)
		data, err := os.ReadFile(rest[1])
		if err != nil {
			fatal(err)
		}
		if err := vfs.WriteFile(view, rest[0], data, 0o644); err != nil {
			fatal(err)
		}
	case "get":
		need(2)
		out, err := os.Create(rest[1])
		if err != nil {
			fatal(err)
		}
		if err := stream(out, view, rest[0]); err != nil {
			out.Close()
			fatal(err)
		}
		if err := out.Close(); err != nil {
			fatal(err)
		}
	case "mkdir":
		need(1)
		if err := view.Mkdir(rest[0], 0o755); err != nil {
			fatal(err)
		}
	case "rm":
		need(1)
		if err := view.Unlink(rest[0]); err != nil {
			fatal(err)
		}
	case "rmdir":
		need(1)
		if err := view.Rmdir(rest[0]); err != nil {
			fatal(err)
		}
	case "mv":
		need(2)
		if err := view.Rename(rest[0], rest[1]); err != nil {
			fatal(err)
		}
	case "statfs":
		need(0)
		info, err := view.StatFS()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("aggregate: total %d bytes, free %d bytes over %d servers\n",
			info.TotalBytes, info.FreeBytes, len(servers))
	case "fsck", "repair":
		need(0)
		report, err := d.Fsck(abstraction.FsckOptions{
			RemoveDangling: cmd == "repair",
			RemoveOrphans:  cmd == "repair",
		})
		if err != nil {
			fatal(err)
		}
		fmt.Println(report)
		for _, p := range report.DanglingStubs {
			fmt.Printf("dangling stub: %s\n", p)
		}
		for _, p := range report.OrphanedData {
			fmt.Printf("orphaned data: %s\n", p)
		}
		for _, p := range report.BadStubs {
			fmt.Printf("bad stub: %s\n", p)
		}
	default:
		usage()
	}
}

func stream(w io.Writer, fs vfs.FileSystem, path string) error {
	f, err := fs.Open(path, vfs.O_RDONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = io.Copy(w, vfs.NewSeqFile(f))
	return err
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tssfs: %v\n", err)
	os.Exit(1)
}
