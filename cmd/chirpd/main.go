// Chirpd deploys a Chirp personal file server: the single-command,
// no-privilege deployment of §4.
//
//	chirpd -root /scratch/export -addr :9094 \
//	       -acl 'hostname:*.cse.nd.edu=rwl' -acl 'unix:alice=rwlda' \
//	       -catalog catalog.host:9097
//
// The server exports -root over the Chirp protocol with hostname and
// unix authentication, enforces per-directory ACLs seeded from the
// -acl flags, and reports itself to each -catalog address by UDP.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tss/internal/acl"
	"tss/internal/auth"
	"tss/internal/catalog"
	"tss/internal/chirp"
	"tss/internal/obs"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	var (
		root      = flag.String("root", ".", "directory to export")
		addr      = flag.String("addr", ":9094", "TCP listen address")
		name      = flag.String("name", "", "advertised server name (default: listen address)")
		owner     = flag.String("owner", "", "owner subject (default: unix:$USER)")
		interval  = flag.Duration("catalog-interval", 15*time.Second, "catalog report period")
		idle      = flag.Duration("idle-timeout", 0, "disconnect idle clients after this long (0 = never)")
		inflight  = flag.Int("max-inflight", 0, "admission control: serve at most N RPCs at once, shedding excess with EAGAIN (0 = unlimited)")
		sessions  = flag.Int("max-sessions", 0, "refuse new connections beyond N concurrent sessions (0 = unlimited)")
		queueWait = flag.Duration("queue-timeout", chirp.DefaultQueueTimeout, "how long an RPC may queue for an admission slot before being shed")
		drain     = flag.Duration("drain-timeout", 30*time.Second, "on SIGINT/SIGTERM, let in-flight requests finish for this long before force-closing (0 = wait forever)")
		debugAddr = flag.String("debug-addr", "", "HTTP address serving /metrics (JSON registry snapshot) and /healthz (503 while draining); empty disables")
		verbose   = flag.Bool("v", false, "log connections")
	)
	var acls, catalogs, ticketIssuers multiFlag
	flag.Var(&acls, "acl", "root ACL entry as subject=rights (repeatable)")
	flag.Var(&catalogs, "catalog", "catalog host:port to report to by UDP (repeatable)")
	flag.Var(&ticketIssuers, "ticket-issuer", "hex public key of a trusted ticket issuer (repeatable; see tssticket)")
	flag.Parse()

	ownerSubject := *owner
	if ownerSubject == "" {
		user := os.Getenv("USER")
		if user == "" {
			user = "owner"
		}
		ownerSubject = "unix:" + user
	}

	rootACL := &acl.List{}
	for _, entry := range acls {
		subj, spec, ok := strings.Cut(entry, "=")
		if !ok {
			log.Fatalf("chirpd: bad -acl %q: want subject=rights", entry)
		}
		rights, reserve, err := acl.ParseSpec(spec)
		if err != nil {
			log.Fatalf("chirpd: bad -acl %q: %v", entry, err)
		}
		rootACL.Set(subj, rights, reserve)
	}

	metrics := obs.NewRegistry()
	cfg := chirp.ServerConfig{
		Name:         *name,
		Owner:        auth.Subject(ownerSubject),
		RootACL:      rootACL,
		IdleTimeout:  *idle,
		MaxInflight:  *inflight,
		MaxSessions:  *sessions,
		QueueTimeout: *queueWait,
		Metrics:      metrics,
		Verifiers: []auth.Verifier{
			&auth.HostnameVerifier{},
			&auth.UnixVerifier{},
		},
	}
	if len(ticketIssuers) > 0 {
		tv := &auth.TicketVerifier{}
		for _, hexKey := range ticketIssuers {
			pub, err := auth.ParseIssuerPublicKey(hexKey)
			if err != nil {
				log.Fatalf("chirpd: -ticket-issuer %q: %v", hexKey, err)
			}
			tv.Issuers = append(tv.Issuers, pub)
		}
		cfg.Verifiers = append(cfg.Verifiers, tv)
	}
	if *verbose {
		cfg.Logf = log.Printf
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("chirpd: %v", err)
	}
	if cfg.Name == "" {
		cfg.Name = l.Addr().String()
	}
	srv, err := chirp.NewServer(*root, cfg)
	if err != nil {
		log.Fatalf("chirpd: %v", err)
	}

	if *debugAddr != "" {
		dl, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			log.Fatalf("chirpd: -debug-addr: %v", err)
		}
		handler := obs.Handler(metrics, func() (bool, string) {
			if srv.Draining() {
				return false, "draining"
			}
			return true, "ok"
		})
		fmt.Printf("chirpd: debug endpoints on http://%s/metrics\n", dl.Addr())
		go func() {
			if err := http.Serve(dl, handler); err != nil {
				log.Printf("chirpd: debug server: %v", err)
			}
		}()
	}

	if len(catalogs) > 0 {
		var sends []func([]byte) error
		for _, c := range catalogs {
			sends = append(sends, catalog.SendUDP(c))
		}
		rep := &catalog.Reporter{
			Describe: func() catalog.Report {
				n, o, info, rootACL := srv.Describe()
				return catalog.Report{
					Name: n, Addr: l.Addr().String(), Owner: o,
					TotalBytes: info.TotalBytes, FreeBytes: info.FreeBytes,
					RootACL:      rootACL,
					Connections:  srv.Stats.Connections.Load(),
					Requests:     srv.Stats.Requests.Load(),
					BytesRead:    srv.Stats.BytesRead.Load(),
					BytesWritten: srv.Stats.BytesWriten.Load(),
				}
			},
			Send:     sends,
			Interval: *interval,
		}
		go rep.Run(make(chan struct{}))
	}

	// A signal starts a graceful drain: the listener closes (Serve
	// returns), in-flight requests run to completion within the drain
	// budget, and stragglers are force-closed when it expires.
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
		sig := <-sigc
		log.Printf("chirpd: %v: draining (budget %v)", sig, *drain)
		ctx := context.Background()
		if *drain > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *drain)
			defer cancel()
		}
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("chirpd: drain incomplete: %v (%d connections force-closed)",
				err, srv.Stats.DrainForced.Load())
		}
	}()

	fmt.Printf("chirpd: exporting %s on %s as %s (owner %s)\n", *root, l.Addr(), cfg.Name, ownerSubject)
	if err := srv.Serve(l); err != nil {
		log.Fatalf("chirpd: %v", err)
	}
	<-drained
	fmt.Printf("chirpd: drained: %d connections, %d requests, %d force-closed\n",
		srv.Stats.Connections.Load(), srv.Stats.Requests.Load(),
		srv.Stats.DrainForced.Load())
}
