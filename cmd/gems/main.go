// Gems is the distributed shared database CLI (§5's DSDB, §9's GEMS):
// store files with searchable attributes across Chirp servers, query
// them, verify replica integrity, and replicate to a storage budget.
// The index is durable — a journal on a local directory — so the
// database survives restarts, and "gems recover" rebuilds it from the
// storage pool if it is lost entirely.
//
//	gems -index ~/.gems -data n0=host0:9094/gems -data n1=host1:9094/gems \
//	     put sim042 protein=villin temp=300 < trajectory.bin
//	gems ... query protein=villin
//	gems ... get sim042 > trajectory.bin
//	gems ... audit
//	gems ... replicate 40000000000
//	gems ... recover
package main

import (
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"tss/internal/abstraction"
	"tss/internal/auth"
	"tss/internal/chirp"
	"tss/internal/gems"
	"tss/internal/vfs"
)

func usage() {
	fmt.Fprintln(os.Stderr, `usage: gems -index DIR [-data name=host:port/dir]... <command> [args]
commands:
  put ID [k=v]...        store stdin under ID with attributes
  get ID                 write the record's data to stdout
  query [k=v]...         list matching records
  list                   list everything
  rm ID                  delete a record and all replicas
  audit                  verify location and integrity of every replica
  replicate BUDGET       replicate records up to BUDGET total bytes
  recover                rebuild the index by rescanning the servers`)
	os.Exit(2)
}

func main() {
	args := os.Args[1:]
	var indexDir string
	type dataSpec struct{ name, spec string }
	var dataSpecs []dataSpec
	for len(args) > 0 && strings.HasPrefix(args[0], "-") {
		switch args[0] {
		case "-index":
			if len(args) < 2 {
				usage()
			}
			indexDir = args[1]
			args = args[2:]
		case "-data":
			if len(args) < 2 {
				usage()
			}
			name, spec, ok := strings.Cut(args[1], "=")
			if !ok {
				usage()
			}
			dataSpecs = append(dataSpecs, dataSpec{name, spec})
			args = args[2:]
		default:
			usage()
		}
	}
	if indexDir == "" || len(dataSpecs) == 0 || len(args) == 0 {
		usage()
	}

	if err := os.MkdirAll(indexDir, 0o755); err != nil {
		fatal(err)
	}
	indexFS, err := vfs.NewLocalFS(indexDir)
	if err != nil {
		fatal(err)
	}
	idx, err := gems.OpenJournalIndex(indexFS, "/index.journal")
	if err != nil {
		fatal(err)
	}
	defer idx.Close()

	var servers []abstraction.DataServer
	for _, ds := range dataSpecs {
		addr, dir := ds.spec, "/gems"
		if i := strings.IndexByte(ds.spec, '/'); i >= 0 {
			addr, dir = ds.spec[:i], ds.spec[i:]
		}
		cli, err := chirp.DialTCP(addr, []auth.Credential{
			auth.HostnameCredential{},
			auth.UnixCredential{},
		}, 30*time.Second)
		if err != nil {
			fatal(fmt.Errorf("data server %s (%s): %w", ds.name, addr, err))
		}
		defer cli.Close()
		servers = append(servers, abstraction.DataServer{Name: ds.name, FS: cli, Dir: dir})
	}
	db, err := gems.NewDSDB(idx, servers)
	if err != nil {
		fatal(err)
	}

	cmd, rest := args[0], args[1:]
	switch cmd {
	case "put":
		if len(rest) < 1 {
			usage()
		}
		attrs, err := parseAttrs(rest[1:])
		if err != nil {
			fatal(err)
		}
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fatal(err)
		}
		rec, err := db.Put(rest[0], attrs, data)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("stored %s: %d bytes on %s\n", rec.ID, rec.Size, rec.Replicas[0].Server)

	case "get":
		if len(rest) != 1 {
			usage()
		}
		rec, found, err := db.Index().Get(rest[0])
		if err != nil {
			fatal(err)
		}
		if !found {
			fatal(fmt.Errorf("no record %q", rest[0]))
		}
		data, err := db.Read(rec)
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(data)

	case "query", "list":
		var attrs map[string]string
		if cmd == "query" {
			var err error
			if attrs, err = parseAttrs(rest); err != nil {
				fatal(err)
			}
		}
		recs, err := db.Query(attrs)
		if err != nil {
			fatal(err)
		}
		for _, r := range recs {
			var kv []string
			for k, v := range r.Attrs {
				kv = append(kv, k+"="+v)
			}
			fmt.Printf("%-24s %10d bytes  %d replicas  %s\n",
				r.ID, r.Size, len(r.Replicas), strings.Join(kv, " "))
		}

	case "rm":
		if len(rest) != 1 {
			usage()
		}
		if err := db.Delete(rest[0]); err != nil {
			fatal(err)
		}

	case "audit":
		rep, err := (&gems.Auditor{DB: db, VerifyContent: true}).Audit()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("audited %d records, %d replicas: %d missing, %d corrupt, %d unreachable\n",
			rep.Records, rep.ReplicasChecked, rep.Missing, rep.Corrupt, rep.Unreachable)

	case "replicate":
		if len(rest) != 1 {
			usage()
		}
		var budget int64
		if _, err := fmt.Sscanf(rest[0], "%d", &budget); err != nil || budget <= 0 {
			fatal(fmt.Errorf("bad budget %q", rest[0]))
		}
		steps, err := (&gems.Replicator{DB: db, BudgetBytes: budget}).Run()
		if err != nil {
			fatal(err)
		}
		stored, _ := db.StoredBytes()
		fmt.Printf("made %d copies; %d of %d bytes used\n", steps, stored, budget)

	case "recover":
		recovered, err := gems.RecoverIndex(servers)
		if err != nil {
			fatal(err)
		}
		recs, err := recovered.List()
		if err != nil {
			fatal(err)
		}
		// Merge into the journal (attributes of re-inserted records are
		// lost; existing entries win).
		added := 0
		for _, r := range recs {
			if _, exists, _ := idx.Get(r.ID); exists {
				continue
			}
			if err := idx.Insert(r); err != nil {
				fatal(err)
			}
			added++
		}
		fmt.Printf("recovered %d records from %d servers (%d new)\n", len(recs), len(servers), added)

	default:
		usage()
	}
}

func parseAttrs(kvs []string) (map[string]string, error) {
	attrs := map[string]string{}
	for _, kv := range kvs {
		k, v, ok := strings.Cut(kv, "=")
		if !ok || k == "" {
			return nil, fmt.Errorf("bad attribute %q: want k=v", kv)
		}
		attrs[k] = v
	}
	return attrs, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "gems: %v\n", err)
	os.Exit(1)
}
