// Tss is the client command-line tool: it performs file operations on
// Chirp servers without mounting anything, using the same client
// library the abstractions use.
//
//	tss ls     host:9094 /
//	tss cat    host:9094 /data/results.txt
//	tss put    host:9094 /data/up.bin  local.bin
//	tss get    host:9094 /data/up.bin  local.copy
//	tss cp     host:9094:/data/a.bin   local.copy
//	tss mkdir  host:9094 /data/newdir
//	tss rm     host:9094 /data/old.bin
//	tss rmdir  host:9094 /data/newdir
//	tss mv     host:9094 /a /b
//	tss stat   host:9094 /data
//	tss statfs host:9094
//	tss whoami host:9094
//	tss getacl host:9094 /data
//	tss setacl host:9094 /data 'hostname:*.cse.nd.edu' 'v(rwl)'
//	tss sum    host:9094 /data/up.bin
//	tss scrub  -repair hostA:9094 hostB:9094 hostC:9094
//	tss fsck   meta:9094 /dsfs dataA:9094 /data dataB:9094 /data
//
// All transfer verbs (get, put, cp) share one flag set: -P <n> fans a
// large transfer out as n parallel multipart streams over a connection
// pool, -chunk <size> sets the multipart chunk size, -verify checks
// digests end to end, and -pool N sizes the pooled transport (raised
// to -P automatically, so the parallel chunks actually get their own
// connections). cp accepts host:port:/path remote specs on either
// side, so remote-to-remote copies stream through the client without
// a temporary file.
package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"tss/internal/auth"
	"tss/internal/cache"
	"tss/internal/chirp"
	"tss/internal/resilient"
	"tss/internal/vfs"
)

// errDone ends leading-flag parsing when the verb is reached.
var errDone = errors.New("done")

// transport is the client surface the CLI drives, satisfied by both the
// single-connection *chirp.Client and the multi-connection *chirp.Pool.
type transport interface {
	vfs.FileSystem
	GetFile(path string, w io.Writer) (int64, error)
	Checksum(path, algo string) (string, error)
	Whoami() (auth.Subject, error)
	GetACL(path string) ([]string, error)
	SetACL(path, subject, rights string) error
	Reconnect() error
	Close() error
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: tss [-ticket FILE] [-timeout DUR] [-retries N] [-retry-base DUR] [-retry-budget N] [-pool N] [-P N] [-chunk SIZE] [-verify] <ls|cat|put|get|sum|mkdir|rm|rmdir|mv|stat|statfs|whoami|getacl|setacl> host:port [args...]")
	fmt.Fprintln(os.Stderr, "       tss [flags] cp <src> <dst>   (each side a local path or host:port:/path)")
	fmt.Fprintln(os.Stderr, "       tss [flags] scrub [-repair] [-algo A] [-root DIR] host:port host:port [...]")
	fmt.Fprintln(os.Stderr, "       tss [flags] fsck [-remove-dangling] [-remove-orphans] meta-host:port meta-dir data-host:port data-dir [...]")
	fmt.Fprintln(os.Stderr, "  -timeout DUR     per-RPC deadline (default 30s)")
	fmt.Fprintln(os.Stderr, "  -retries N       reconnect-and-retry reads and transfer chunks N times on failure (default 2)")
	fmt.Fprintln(os.Stderr, "  -retry-base DUR  first retry backoff, doubled per attempt with jitter (default 100ms)")
	fmt.Fprintln(os.Stderr, "  -retry-budget N  token-bucket cap on total retries across the run; successes earn")
	fmt.Fprintln(os.Stderr, "                   tokens back, so a retry storm cannot sustain itself (0 = uncapped)")
	fmt.Fprintln(os.Stderr, "  -pool N          use up to N pooled connections instead of one (default 1, raised to -P)")
	fmt.Fprintln(os.Stderr, "  -P N             split large get/put/cp transfers into N parallel multipart streams")
	fmt.Fprintln(os.Stderr, "  -chunk SIZE      multipart chunk size, with optional K/M/G suffix (default 8M)")
	fmt.Fprintln(os.Stderr, "  -verify          checksum transfers end to end (falls back on old servers)")
	fmt.Fprintln(os.Stderr, "  -cache           cache attrs, dirents, and pages client-side, kept consistent by server leases")
	fmt.Fprintln(os.Stderr, "  -attr-ttl DUR    cache: attr/dirent time-to-live (default 2s)")
	fmt.Fprintln(os.Stderr, "  -wb              cache: buffer writes for write-back instead of writing through")
	os.Exit(2)
}

// parseSize parses a byte count with an optional K/M/G suffix.
func parseSize(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "G"), strings.HasSuffix(s, "g"):
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return n * mult, nil
}

func main() {
	argv := os.Args[1:]
	creds := []auth.Credential{
		auth.HostnameCredential{},
		auth.UnixCredential{},
	}
	timeout := 30 * time.Second
	retries := 2
	retryBase := 100 * time.Millisecond
	var retryTokens float64
	poolSize := 1
	par := 1
	var chunkSize int64
	verify := false
	cacheOn := false
	writeBack := false
	var attrTTL time.Duration
	// Leading flags, parsed by hand so the verb-first grammar survives.
	for len(argv) >= 1 {
		if argv[0] == "-verify" {
			verify = true
			argv = argv[1:]
			continue
		}
		if argv[0] == "-cache" {
			cacheOn = true
			argv = argv[1:]
			continue
		}
		if argv[0] == "-wb" {
			writeBack = true
			argv = argv[1:]
			continue
		}
		if len(argv) < 2 {
			break
		}
		var err error
		switch argv[0] {
		case "-ticket":
			// Authenticate with a minted ticket (see tssticket) before
			// falling back to hostname/unix.
			var data []byte
			if data, err = os.ReadFile(argv[1]); err == nil {
				var cred auth.Credential
				if cred, err = auth.ImportBearer(data); err == nil {
					creds = append([]auth.Credential{cred}, creds...)
				}
			}
		case "-timeout":
			timeout, err = time.ParseDuration(argv[1])
		case "-retries":
			retries, err = strconv.Atoi(argv[1])
		case "-retry-base":
			retryBase, err = time.ParseDuration(argv[1])
		case "-retry-budget":
			retryTokens, err = strconv.ParseFloat(argv[1], 64)
		case "-pool":
			poolSize, err = strconv.Atoi(argv[1])
		case "-P":
			par, err = strconv.Atoi(argv[1])
		case "-chunk":
			chunkSize, err = parseSize(argv[1])
		case "-attr-ttl":
			attrTTL, err = time.ParseDuration(argv[1])
		default:
			err = errDone
		}
		if err == errDone {
			break
		}
		if err != nil {
			fatal(fmt.Errorf("%s %s: %v", argv[0], argv[1], err))
		}
		argv = argv[2:]
	}
	if len(argv) < 2 {
		usage()
	}
	if par < 1 {
		par = 1
	}
	// Parallel multipart streams need their own connections: a -P wider
	// than the pool would serialize on the transport anyway.
	if par > poolSize {
		poolSize = par
	}
	// The maintenance verbs take several server addresses, not one, and
	// cp takes endpoint specs rather than a leading address.
	switch argv[0] {
	case "scrub":
		runScrub(argv[1:], creds, timeout)
		return
	case "fsck":
		runFsck(argv[1:], creds, timeout)
		return
	case "cp":
		runCp(argv[1:], creds, timeout, poolSize, par, chunkSize, verify, retries, retryBase, retryTokens)
		return
	}
	verb, addr, args := argv[0], argv[1], argv[2:]

	cfg := chirp.ClientConfig{
		Dial: func() (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 10*time.Second)
		},
		Credentials: creds,
		Timeout:     timeout,
		PoolSize:    poolSize,
		Verify:      verify,
	}
	var client transport
	var err error
	if poolSize > 1 {
		client, err = chirp.NewPool(cfg)
	} else {
		client, err = chirp.Dial(cfg)
	}
	if err != nil {
		fatal(err)
	}
	defer client.Close()

	// With -cache, namespace verbs go through the lease-consistent
	// caching tier; transfer and identity verbs keep the raw transport
	// (their capability fast paths stream around a page cache anyway).
	// The cache's Close releases the granted leases.
	var view vfs.FileSystem = client
	if cacheOn {
		cfs := cache.New(client, cache.Options{
			AttrTTL:      attrTTL,
			WriteThrough: !writeBack,
			Verify:       verify,
		})
		defer cfs.Close()
		view = cfs
	}

	// retry reconnects and re-issues idempotent operations on transport
	// failure, with jittered exponential backoff; exhaustion surfaces as
	// ETIMEDOUT (§6), except pushback exhaustion, which keeps EAGAIN so
	// callers can see the overload signal. Non-idempotent verbs (put,
	// mkdir, mv, ...) run once: blind replay could double-apply.
	policy, err := resilient.NewPolicy(
		resilient.WithAttempts(retries),
		resilient.WithBase(retryBase),
		resilient.WithJitter(0.2),
		resilient.WithRetryBudget(newBudget(retryTokens)),
	)
	if err != nil {
		fatal(err)
	}
	retry := func(op func() error) error {
		if retries <= 0 {
			return op()
		}
		var lastErr error
		prepare := func() error {
			if resilient.Pushback(lastErr) {
				// The server answered and asked for room; redialing it
				// would add load exactly where there is none to spare.
				return nil
			}
			return client.Reconnect()
		}
		err, exhausted := policy.Do(func() error {
			lastErr = op()
			return lastErr
		}, prepare, resilient.RetryableOrPushback)
		if exhausted {
			if resilient.Pushback(err) {
				return vfs.EAGAIN
			}
			return vfs.ETIMEDOUT
		}
		return err
	}

	// Transfer verbs route through the unified copy engine, which picks
	// single-shot or parallel multipart from the flags and what the
	// server supports.
	copyOpts := vfs.CopyOptions{Concurrency: par, ChunkSize: chunkSize, Verify: verify}
	if retries > 0 {
		copyOpts.Retry = policy
	}

	need := func(n int) {
		if len(args) != n {
			usage()
		}
	}

	switch verb {
	case "ls":
		need(1)
		var ents []vfs.DirEntry
		err := retry(func() error {
			var e error
			ents, e = view.ReadDir(args[0])
			return e
		})
		if err != nil {
			fatal(err)
		}
		for _, e := range ents {
			kind := "-"
			if e.IsDir {
				kind = "d"
			}
			fmt.Printf("%s %s\n", kind, e.Name)
		}
	case "cat":
		need(1)
		if _, err := client.GetFile(args[0], os.Stdout); err != nil {
			fatal(err)
		}
	case "put":
		need(2)
		src, err := localLoc(args[1])
		if err != nil {
			fatal(err)
		}
		opts := copyOpts
		opts.Mode = 0o644
		if _, err := vfs.Copy(context.Background(),
			vfs.Loc{FS: client, Path: args[0]}, src, opts); err != nil {
			fatal(err)
		}
	case "get":
		need(2)
		dst, err := localLoc(args[1])
		if err != nil {
			fatal(err)
		}
		if _, err := vfs.Copy(context.Background(),
			dst, vfs.Loc{FS: client, Path: args[0]}, copyOpts); err != nil {
			fatal(err)
		}
	case "sum":
		if len(args) != 1 && len(args) != 2 {
			usage()
		}
		algo := ""
		if len(args) == 2 {
			algo = args[1]
		}
		var sum string
		err := retry(func() error {
			var e error
			sum, e = client.Checksum(args[0], algo)
			return e
		})
		if err != nil {
			fatal(err)
		}
		fmt.Println(sum)
	case "mkdir":
		need(1)
		if err := view.Mkdir(args[0], 0o755); err != nil {
			fatal(err)
		}
	case "rm":
		need(1)
		if err := view.Unlink(args[0]); err != nil {
			fatal(err)
		}
	case "rmdir":
		need(1)
		if err := view.Rmdir(args[0]); err != nil {
			fatal(err)
		}
	case "mv":
		need(2)
		if err := view.Rename(args[0], args[1]); err != nil {
			fatal(err)
		}
	case "stat":
		need(1)
		var fi vfs.FileInfo
		err := retry(func() error {
			var e error
			fi, e = view.Stat(args[0])
			return e
		})
		if err != nil {
			fatal(err)
		}
		printStat(os.Stdout, fi)
	case "statfs":
		need(0)
		var info vfs.FSInfo
		err := retry(func() error {
			var e error
			info, e = view.StatFS()
			return e
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("total %d bytes, free %d bytes\n", info.TotalBytes, info.FreeBytes)
	case "whoami":
		need(0)
		var who auth.Subject
		err := retry(func() error {
			var e error
			who, e = client.Whoami()
			return e
		})
		if err != nil {
			fatal(err)
		}
		fmt.Println(who)
	case "getacl":
		need(1)
		var lines []string
		err := retry(func() error {
			var e error
			lines, e = client.GetACL(args[0])
			return e
		})
		if err != nil {
			fatal(err)
		}
		for _, l := range lines {
			fmt.Println(l)
		}
	case "setacl":
		need(3)
		if err := client.SetACL(args[0], args[1], args[2]); err != nil {
			fatal(err)
		}
	default:
		usage()
	}
}

// localLoc wraps a host path as a copy-engine endpoint: a LocalFS
// rooted at the containing directory, so the engine's capability probe
// and positional fallback work on the local side like any other.
func localLoc(path string) (vfs.Loc, error) {
	abs, err := filepath.Abs(path)
	if err != nil {
		return vfs.Loc{}, err
	}
	dir, base := filepath.Split(abs)
	if base == "" {
		return vfs.Loc{}, fmt.Errorf("%s: not a file path", path)
	}
	fs, err := vfs.NewLocalFS(filepath.Clean(dir))
	if err != nil {
		return vfs.Loc{}, fmt.Errorf("%s: %w", path, err)
	}
	return vfs.Loc{FS: fs, Path: "/" + base}, nil
}

// splitRemote recognizes host:port:/path endpoint specs. Anything else
// — including Windows-style or relative paths — is a local path.
func splitRemote(arg string) (addr, path string, ok bool) {
	parts := strings.SplitN(arg, ":", 3)
	if len(parts) == 3 && parts[0] != "" && parts[1] != "" && strings.HasPrefix(parts[2], "/") {
		return parts[0] + ":" + parts[1], parts[2], true
	}
	return "", "", false
}

// runCp copies between any two endpoints, each a local path or a
// host:port:/path remote spec, through the same engine as get/put.
// Remote-to-remote copies stream through this client chunk by chunk
// without a temporary file; a repeated address shares one transport.
func runCp(args []string, creds []auth.Credential, timeout time.Duration, poolSize, par int, chunk int64, verify bool, retries int, retryBase time.Duration, retryTokens float64) {
	if len(args) != 2 {
		usage()
	}
	opts := vfs.CopyOptions{Concurrency: par, ChunkSize: chunk, Verify: verify}
	if retries > 0 {
		policy, err := resilient.NewPolicy(
			resilient.WithAttempts(retries),
			resilient.WithBase(retryBase),
			resilient.WithJitter(0.2),
			resilient.WithRetryBudget(newBudget(retryTokens)),
		)
		if err != nil {
			fatal(err)
		}
		opts.Retry = policy
	}
	clients := make(map[string]transport)
	dialOne := func(addr string) transport {
		if c, ok := clients[addr]; ok {
			return c
		}
		cfg := chirp.ClientConfig{
			Dial: func() (net.Conn, error) {
				return net.DialTimeout("tcp", addr, 10*time.Second)
			},
			Credentials: creds,
			Timeout:     timeout,
			PoolSize:    poolSize,
			Verify:      verify,
		}
		var c transport
		var err error
		if poolSize > 1 {
			c, err = chirp.NewPool(cfg)
		} else {
			c, err = chirp.Dial(cfg)
		}
		if err != nil {
			fatal(err)
		}
		clients[addr] = c
		return c
	}
	locOf := func(arg string) vfs.Loc {
		if addr, path, ok := splitRemote(arg); ok {
			return vfs.Loc{FS: dialOne(addr), Path: path}
		}
		loc, err := localLoc(arg)
		if err != nil {
			fatal(err)
		}
		return loc
	}
	src := locOf(args[0])
	dst := locOf(args[1])
	if _, err := vfs.Copy(context.Background(), dst, src, opts); err != nil {
		fatal(err)
	}
	for _, c := range clients {
		if err := c.Close(); err != nil {
			fatal(err)
		}
	}
}

func printStat(w io.Writer, fi vfs.FileInfo) {
	kind := "file"
	if fi.IsDir {
		kind = "dir"
	}
	fmt.Fprintf(w, "%s %s size=%d mode=%o mtime=%s inode=%d\n",
		kind, fi.Name, fi.Size, fi.Mode, fi.ModTime().Format(time.RFC3339), fi.Inode)
}

// newBudget builds the shared CLI retry budget; 0 tokens means no cap.
func newBudget(tokens float64) *resilient.RetryBudget {
	if tokens <= 0 {
		return nil
	}
	return resilient.NewRetryBudget(tokens, 0)
}

// exitCode maps a failure to the process exit status, keeping the
// transient overload conditions distinguishable from hard failure so
// scripts can react: EAGAIN — the server shed the request — exits 75
// (EX_TEMPFAIL, "try again later"), and ESHUTDOWN — the server is
// draining — exits 69 (EX_UNAVAILABLE). Everything else is the
// generic 1.
func exitCode(err error) int {
	switch vfs.AsErrno(err) {
	case vfs.EAGAIN:
		return 75
	case vfs.ESHUTDOWN:
		return 69
	}
	return 1
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tss: %v\n", err)
	os.Exit(exitCode(err))
}
