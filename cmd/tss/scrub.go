// The multi-server maintenance verbs: scrub audits and repairs a
// mirrored tree by cross-replica digest comparison; fsck cross-checks
// a distributed filesystem's metadata tree against its data servers,
// validating stripe descriptors along the way. Both take several
// server addresses, so they parse their own argument grammar instead
// of the single-address flow in main.go.
package main

import (
	"context"
	"fmt"
	"os"
	"strings"
	"time"

	"tss/internal/abstraction"
	"tss/internal/auth"
	"tss/internal/chirp"
	"tss/internal/vfs"
)

// dialAll connects to every address, tearing down on first failure.
func dialAll(addrs []string, creds []auth.Credential, timeout time.Duration) []*chirp.Client {
	clients := make([]*chirp.Client, 0, len(addrs))
	for _, addr := range addrs {
		c, err := chirp.DialTCP(addr, creds, timeout)
		if err != nil {
			for _, open := range clients {
				open.Close()
			}
			fatal(fmt.Errorf("dial %s: %w", addr, err))
		}
		clients = append(clients, c)
	}
	return clients
}

// runScrub audits the same tree on every given server as mirror
// replicas: per-file digests are compared across servers, divergent
// copies are reported, and -repair rewrites them from the majority
// copy (ties broken by newest mtime). Exits nonzero when divergence
// was found and not fully repaired.
//
//	tss scrub [-repair] [-algo crc32c|sha256] [-root DIR] host:port host:port [...]
func runScrub(args []string, creds []auth.Credential, timeout time.Duration) {
	repair := false
	algo := ""
	root := "/"
	for len(args) > 0 && strings.HasPrefix(args[0], "-") {
		switch {
		case args[0] == "-repair":
			repair = true
			args = args[1:]
		case args[0] == "-algo" && len(args) >= 2:
			algo = args[1]
			args = args[2:]
		case args[0] == "-root" && len(args) >= 2:
			root = args[1]
			args = args[2:]
		default:
			usage()
		}
	}
	if len(args) < 2 {
		fmt.Fprintln(os.Stderr, "tss scrub: need at least two replica addresses")
		usage()
	}
	clients := dialAll(args, creds, timeout)
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	replicas := make([]vfs.FileSystem, len(clients))
	for i, c := range clients {
		replicas[i] = c
	}
	m, err := abstraction.NewMirrorOptions(abstraction.MirrorOptions{ChecksumAlgo: algo}, replicas...)
	if err != nil {
		fatal(err)
	}
	rep, err := m.Scrub(context.Background(), abstraction.ScrubOptions{
		Root:   root,
		Algo:   algo,
		Repair: repair,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("scrub: %d files, %d divergent, %d replica copies repaired\n",
		rep.FilesScanned, rep.Divergent, rep.Repaired)
	for _, f := range rep.Files {
		fmt.Printf("  %s winner=replica%d repaired=%v\n", f.Path, f.Winner, f.Repaired)
		for i, d := range f.Digests {
			if d == "" {
				d = "(unavailable)"
			}
			fmt.Printf("    replica%d %s\n", i, d)
		}
		if f.Err != "" {
			fmt.Printf("    error: %s\n", f.Err)
		}
	}
	for _, e := range rep.Errors {
		fmt.Fprintf(os.Stderr, "scrub: %s\n", e)
	}
	unrepaired := rep.Divergent
	for _, f := range rep.Files {
		if f.Err == "" && repair {
			unrepaired--
		}
	}
	if unrepaired > 0 || len(rep.Errors) > 0 {
		os.Exit(1)
	}
}

// runFsck checks a distributed filesystem: the metadata tree on one
// server against the data files on the others, recognizing both stub
// files and stripe descriptors. Exits nonzero when problems remain.
//
//	tss fsck [-remove-dangling] [-remove-orphans] meta-host:port meta-dir data-host:port data-dir [...]
func runFsck(args []string, creds []auth.Credential, timeout time.Duration) {
	opts := abstraction.FsckOptions{}
	for len(args) > 0 && strings.HasPrefix(args[0], "-") {
		switch args[0] {
		case "-remove-dangling":
			opts.RemoveDangling = true
		case "-remove-orphans":
			opts.RemoveOrphans = true
		default:
			usage()
		}
		args = args[1:]
	}
	if len(args) < 4 || len(args)%2 != 0 {
		fmt.Fprintln(os.Stderr, "tss fsck: need meta addr+dir followed by data addr+dir pairs")
		usage()
	}
	addrs := make([]string, 0, len(args)/2)
	dirs := make([]string, 0, len(args)/2)
	for i := 0; i < len(args); i += 2 {
		addrs = append(addrs, args[i])
		dirs = append(dirs, args[i+1])
	}
	clients := dialAll(addrs, creds, timeout)
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	servers := make([]abstraction.DataServer, 0, len(clients)-1)
	for i := 1; i < len(clients); i++ {
		servers = append(servers, abstraction.DataServer{
			Name: addrs[i],
			FS:   clients[i],
			Dir:  dirs[i],
		})
	}
	d, err := abstraction.NewDSFS(clients[0], dirs[0], servers, abstraction.Options{})
	if err != nil {
		fatal(err)
	}
	rep, err := d.Fsck(opts)
	if err != nil {
		fatal(err)
	}
	fmt.Println(rep.String())
	for _, p := range rep.DanglingStubs {
		fmt.Printf("  dangling stub %s\n", p)
	}
	for _, p := range rep.BadStubs {
		fmt.Printf("  bad stub %s\n", p)
	}
	for _, p := range rep.OrphanedData {
		fmt.Printf("  orphaned data %s\n", p)
	}
	for _, p := range rep.Unreachable {
		fmt.Printf("  unreachable %s\n", p)
	}
	for _, p := range rep.StripeDamaged {
		fmt.Printf("  damaged stripe %s\n", p)
	}
	for p, digests := range rep.StripeDigests {
		fmt.Printf("  stripe %s\n", p)
		for i, sum := range digests {
			if sum == "" {
				sum = "(unavailable)"
			}
			fmt.Printf("    member%d %s\n", i, sum)
		}
	}
	if !rep.Clean() {
		os.Exit(1)
	}
}
