package main

import (
	"fmt"
	"syscall"
	"testing"

	"tss/internal/vfs"
)

// The overload signals must survive the whole trip from the wire to
// the process exit status: a Chirp status code becomes a vfs.Errno
// via FromCode, hops layers via AsErrno, and finally picks the exit
// code — at no point may EAGAIN or ESHUTDOWN collapse into EIO
// (DESIGN.md §6).
func TestErrnoExitMapping(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want vfs.Errno
		exit int
	}{
		{"shed request", vfs.EAGAIN, vfs.EAGAIN, 75},
		{"shed via wire code", vfs.FromCode(-int(vfs.EAGAIN)), vfs.EAGAIN, 75},
		{"shed via syscall", syscall.EAGAIN, vfs.EAGAIN, 75},
		{"shed wrapped", fmt.Errorf("stat /f: %w", vfs.EAGAIN), vfs.EAGAIN, 75},
		{"draining server", vfs.ESHUTDOWN, vfs.ESHUTDOWN, 69},
		{"draining via wire code", vfs.FromCode(-int(vfs.ESHUTDOWN)), vfs.ESHUTDOWN, 69},
		{"draining via syscall", syscall.ESHUTDOWN, vfs.ESHUTDOWN, 69},
		{"deadline lapsed", vfs.ETIMEDOUT, vfs.ETIMEDOUT, 1},
		{"transport lost", vfs.ENOTCONN, vfs.ENOTCONN, 1},
		{"missing file", vfs.ENOENT, vfs.ENOENT, 1},
		{"unknown error", fmt.Errorf("opaque failure"), vfs.EIO, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := vfs.AsErrno(tc.err); got != tc.want {
				t.Errorf("AsErrno(%v) = %v, want %v", tc.err, got, tc.want)
			}
			if got := exitCode(tc.err); got != tc.exit {
				t.Errorf("exitCode(%v) = %d, want %d", tc.err, got, tc.exit)
			}
		})
	}
}
