// Tsslint is the repo-invariant static analyzer of the tactical
// storage system. It loads every package named on the command line
// (default ./...) with go/parser + go/types — no external dependencies
// — and runs the checkers in internal/lint, each of which enforces a
// contract the recursive storage stack relies on:
//
//	capprobe   optional vfs interfaces are reached via vfs.Capabilities
//	lockheld   no blocking I/O while a sync mutex is held
//	sleepseam  no bare time.Sleep outside the injectable sleep seams
//	errnowrap  errors crossing vfs methods keep their errno (%w)
//	ctxleak    received contexts are forwarded, not re-minted
//
// Diagnostics print as file:line:col: [check] message and the exit
// status is nonzero when any are found. A finding that is wrong by
// design at one site is silenced with an explained suppression:
//
//	//lint:ignore <check> <reason>
//
// on the offending line or the line above it. The reason is mandatory.
package main

import (
	"flag"
	"fmt"
	"os"

	"tss/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list registered checkers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tsslint [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		lint.ListCheckers(os.Stdout)
		return
	}
	os.Exit(lint.Main(os.Stdout, ".", flag.Args()...))
}
