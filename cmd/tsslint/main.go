// Tsslint is the repo-invariant static analyzer of the tactical
// storage system. It loads every package named on the command line
// (default ./...) with go/parser + go/types — no external dependencies
// — and runs the checkers in internal/lint, each of which enforces a
// contract the recursive storage stack relies on:
//
//	capprobe     optional vfs interfaces are reached via vfs.Capabilities
//	lockheld     no blocking I/O while a sync mutex is held
//	sleepseam    no bare time.Sleep outside the injectable sleep seams
//	errnowrap    errors crossing vfs methods keep their errno (%w)
//	ctxleak      received contexts are forwarded, not re-minted
//	copyapi      transfers go through the vfs.Copy engine
//	reslifetime  acquired files/conns/clients are released on every path
//	lockorder    the repo-wide lock-acquisition graph is cycle-free
//	goroleak     goroutines have a provable exit and cannot block forever
//
// The last three run on a per-function control-flow graph with a
// forward dataflow analysis (plus, for lockorder, a repo-wide
// call/lock summary pass), so early error returns, branch joins and
// deferred cleanup are modeled rather than approximated.
//
// Diagnostics print as file:line:col: [check] message and the exit
// status is nonzero when any are found. A finding that is wrong by
// design at one site is silenced with an explained suppression:
//
//	//lint:ignore <check> <reason>
//
// on the offending line or the line above it. The reason is mandatory,
// the check name must exist, and -unused lists suppressions that no
// longer match anything.
package main

import (
	"flag"
	"fmt"
	"os"

	"tss/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list registered checkers and exit")
	unused := flag.Bool("unused", false, "also report //lint:ignore suppressions that match no diagnostic")
	timing := flag.Bool("time", false, "print analysis runtime and package count to stderr")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tsslint [-list] [-unused] [-time] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		lint.ListCheckers(os.Stdout)
		return
	}
	opts := lint.Options{Unused: *unused}
	if *timing {
		opts.Timing = os.Stderr
	}
	os.Exit(lint.MainOpts(os.Stdout, ".", opts, flag.Args()...))
}
