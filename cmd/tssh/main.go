// Tssh is an interactive shell over the TSS adapter: mount Chirp
// servers anywhere in a private namespace and browse them with
// familiar commands — the user-facing face of §6's adapter, without
// kernel involvement.
//
//	$ tssh
//	tss> mount /data chirp://localhost:9094
//	tss> cd /data
//	tss> ls
//	tss> put report.pdf backups/report.pdf
//	tss> cat backups/report.pdf > /dev/null
//	tss> exit
//
// Commands are also accepted on stdin non-interactively:
//
//	echo "mount /d chirp://host:9094\nls /d" | tssh
package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"tss/internal/adapter"
	"tss/internal/auth"
	"tss/internal/chirp"
	"tss/internal/pathutil"
	"tss/internal/vfs"
)

type shell struct {
	a   *adapter.Adapter
	cwd string
	out io.Writer
	// clients tracks dialed servers for cleanup.
	clients []*chirp.Client
}

func main() {
	sh := &shell{
		a:   adapter.New(adapter.Config{}),
		cwd: "/",
		out: os.Stdout,
	}
	defer sh.closeAll()

	interactive := false
	if fi, err := os.Stdin.Stat(); err == nil && fi.Mode()&os.ModeCharDevice != 0 {
		interactive = true
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		if interactive {
			fmt.Fprint(sh.out, "tss> ")
		}
		if !sc.Scan() {
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if line == "exit" || line == "quit" {
			return
		}
		if err := sh.exec(line); err != nil {
			fmt.Fprintf(os.Stderr, "tssh: %v\n", err)
			if !interactive {
				os.Exit(1)
			}
		}
	}
}

func (sh *shell) closeAll() {
	for _, c := range sh.clients {
		c.Close()
	}
}

// abs resolves a command argument against the current directory.
func (sh *shell) abs(p string) string {
	if strings.HasPrefix(p, "/") {
		n, _ := pathutil.Norm(p)
		return n
	}
	return pathutil.Join(sh.cwd, p)
}

func (sh *shell) exec(line string) error {
	fields := strings.Fields(line)
	cmd, args := fields[0], fields[1:]
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s: wrong number of arguments", cmd)
		}
		return nil
	}
	switch cmd {
	case "help":
		fmt.Fprintln(sh.out, `commands:
  mount LOGICAL chirp://host:port[/subdir]   attach a server
  umount LOGICAL                             detach
  mounts                                     list mounts
  cd DIR | pwd | ls [DIR] | stat PATH | df
  cat PATH | put LOCAL REMOTE | get REMOTE LOCAL
  mkdir DIR | rm PATH | rmdir DIR | mv OLD NEW
  getacl DIR | setacl DIR SUBJECT RIGHTS
  exit`)
		return nil

	case "mount":
		if err := need(2); err != nil {
			return err
		}
		target := args[1]
		if !strings.HasPrefix(target, "chirp://") {
			return fmt.Errorf("mount: target must be chirp://host:port[/subdir]")
		}
		rest := strings.TrimPrefix(target, "chirp://")
		addr, sub := rest, "/"
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			addr, sub = rest[:i], rest[i:]
		}
		cli, err := chirp.DialTCP(addr, []auth.Credential{
			auth.HostnameCredential{},
			auth.UnixCredential{},
		}, 30*time.Second)
		if err != nil {
			return fmt.Errorf("mount: %w", err)
		}
		var fs vfs.FileSystem = cli
		if sub != "/" {
			fs, err = vfs.Subtree(cli, sub)
			if err != nil {
				cli.Close()
				return err
			}
		}
		if err := sh.a.MountFS(args[0], fs); err != nil {
			cli.Close()
			return fmt.Errorf("mount: %w", err)
		}
		sh.clients = append(sh.clients, cli)
		who, _ := cli.Whoami()
		fmt.Fprintf(sh.out, "mounted %s on %s (authenticated as %s)\n", target, args[0], who)
		return nil

	case "umount":
		if err := need(1); err != nil {
			return err
		}
		return sh.a.Unmount(args[0])

	case "mounts":
		for _, m := range sh.a.Mounts() {
			fmt.Fprintf(sh.out, "%s\n", m.Prefix)
		}
		return nil

	case "cd":
		if err := need(1); err != nil {
			return err
		}
		dir := sh.abs(args[0])
		fi, err := sh.a.Stat(dir)
		if err != nil {
			return err
		}
		if !fi.IsDir {
			return vfs.ENOTDIR
		}
		sh.cwd = dir
		return nil

	case "pwd":
		fmt.Fprintln(sh.out, sh.cwd)
		return nil

	case "ls":
		dir := sh.cwd
		if len(args) == 1 {
			dir = sh.abs(args[0])
		} else if len(args) > 1 {
			return need(1)
		}
		ents, err := sh.a.ReadDir(dir)
		if err != nil {
			return err
		}
		for _, e := range ents {
			kind := "-"
			if e.IsDir {
				kind = "d"
			}
			fmt.Fprintf(sh.out, "%s %s\n", kind, e.Name)
		}
		return nil

	case "stat":
		if err := need(1); err != nil {
			return err
		}
		fi, err := sh.a.Stat(sh.abs(args[0]))
		if err != nil {
			return err
		}
		kind := "file"
		if fi.IsDir {
			kind = "dir"
		}
		fmt.Fprintf(sh.out, "%s %s size=%d mode=%o mtime=%s\n",
			kind, fi.Name, fi.Size, fi.Mode, fi.ModTime().Format(time.RFC3339))
		return nil

	case "df":
		info, err := sh.a.StatFS()
		if err != nil {
			return err
		}
		fmt.Fprintf(sh.out, "total %d bytes, free %d bytes\n", info.TotalBytes, info.FreeBytes)
		return nil

	case "cat":
		if err := need(1); err != nil {
			return err
		}
		f, err := sh.a.Open(sh.abs(args[0]), vfs.O_RDONLY, 0)
		if err != nil {
			return err
		}
		defer f.Close()
		_, err = io.Copy(sh.out, vfs.NewSeqFile(f))
		return err

	case "put":
		if err := need(2); err != nil {
			return err
		}
		data, err := os.ReadFile(args[0])
		if err != nil {
			return err
		}
		return vfs.WriteFile(sh.a, sh.abs(args[1]), data, 0o644)

	case "get":
		if err := need(2); err != nil {
			return err
		}
		data, err := vfs.ReadFile(sh.a, sh.abs(args[0]))
		if err != nil {
			return err
		}
		return os.WriteFile(args[1], data, 0o644)

	case "mkdir":
		if err := need(1); err != nil {
			return err
		}
		return sh.a.Mkdir(sh.abs(args[0]), 0o755)

	case "rm":
		if err := need(1); err != nil {
			return err
		}
		return sh.a.Unlink(sh.abs(args[0]))

	case "rmdir":
		if err := need(1); err != nil {
			return err
		}
		return sh.a.Rmdir(sh.abs(args[0]))

	case "mv":
		if err := need(2); err != nil {
			return err
		}
		return sh.a.Rename(sh.abs(args[0]), sh.abs(args[1]))

	case "getacl", "setacl":
		// ACLs live on the server behind the mount; find the client.
		return sh.aclCmd(cmd, args)
	}
	return fmt.Errorf("unknown command %q (try help)", cmd)
}

// aclCmd routes getacl/setacl to the Chirp client behind the mount
// containing the target directory.
func (sh *shell) aclCmd(cmd string, args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("%s: need a directory", cmd)
	}
	dir := sh.abs(args[0])
	var best adapter.Mount
	for _, m := range sh.a.Mounts() {
		if pathutil.Within(m.Prefix, dir) && len(m.Prefix) > len(best.Prefix) {
			best = m
		}
	}
	if best.FS == nil {
		return vfs.ENOENT
	}
	rest, _ := pathutil.Rebase(best.Prefix, dir)
	cli, ok := best.FS.(*chirp.Client)
	if !ok {
		return fmt.Errorf("%s: mount %s is not a plain chirp server", cmd, best.Prefix)
	}
	switch cmd {
	case "getacl":
		lines, err := cli.GetACL(rest)
		if err != nil {
			return err
		}
		for _, l := range lines {
			fmt.Fprintln(sh.out, l)
		}
		return nil
	case "setacl":
		if len(args) != 3 {
			return fmt.Errorf("setacl DIR SUBJECT RIGHTS")
		}
		return cli.SetACL(rest, args[1], args[2])
	}
	return nil
}
