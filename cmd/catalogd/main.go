// Catalogd runs a catalog server: it ingests UDP reports from file
// servers and publishes the aggregate listing over HTTP in text and
// JSON (§4).
//
//	catalogd -udp :9097 -http :9098 -timeout 5m
//
//	curl http://localhost:9098/       # text listing
//	curl http://localhost:9098/json   # JSON listing
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"tss/internal/catalog"
)

func main() {
	var (
		udpAddr  = flag.String("udp", ":9097", "UDP address for file server reports")
		httpAddr = flag.String("http", ":9098", "HTTP address for listings")
		timeout  = flag.Duration("timeout", 5*time.Minute, "evict servers silent for this long")
	)
	flag.Parse()

	srv := catalog.NewServer(*timeout)

	pc, err := net.ListenPacket("udp", *udpAddr)
	if err != nil {
		log.Fatalf("catalogd: %v", err)
	}
	go func() {
		if err := srv.ServeUDP(pc); err != nil {
			log.Fatalf("catalogd: udp: %v", err)
		}
	}()

	fmt.Printf("catalogd: reports on %s, listings on http://%s/ and /json\n", pc.LocalAddr(), *httpAddr)
	if err := http.ListenAndServe(*httpAddr, srv); err != nil {
		log.Fatalf("catalogd: http: %v", err)
	}
}
