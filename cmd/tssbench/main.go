// Tssbench regenerates the tables and figures of the paper's
// evaluation (§7-§9). Each experiment prints the same rows or series
// the paper reports, plus the qualitative shape to compare against.
//
//	tssbench -run all
//	tssbench -run fig5
//	tssbench -run fig3,fig4,sp5
//
// Experiments: fig3 fig4 fig5 fig6 fig7 fig8 sp5 fig9 pool, plus the
// cachesweep ablation, the cache (client caching tier) ablation, obs
// decomposition, integrity corruption experiment, multipart transfer
// scaling, and the chaos invariant sweep (not in 'all').
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"tss/internal/experiments"
	"tss/internal/workload"
)

func main() {
	var (
		run     = flag.String("run", "all", "comma-separated experiments (fig3..fig9, sp5, obs, pool) or 'all'")
		quick   = flag.Bool("quick", false, "reduced iteration counts and WAN latency for a fast pass")
		clients = flag.Int("clients", 8, "concurrent client goroutines for the pool experiment")
		jsonOut = flag.Bool("json", false, "run the instrumented chirp benchmarks and emit a combined JSON report to stdout (for BENCH_chirp.json)")
	)
	flag.Parse()

	if *jsonOut {
		obsRes, err := experiments.RunObsBench(experiments.DefaultObsBench(*quick))
		if err != nil {
			log.Fatalf("tssbench: obs: %v", err)
		}
		poolRes, err := experiments.RunPoolBench(experiments.DefaultPoolBench(*quick, *clients))
		if err != nil {
			log.Fatalf("tssbench: pool: %v", err)
		}
		intRes, err := experiments.RunCorruptBench(experiments.DefaultCorruptBench(*quick))
		if err != nil {
			log.Fatalf("tssbench: integrity: %v", err)
		}
		mpRes, err := experiments.RunMultipartBench(experiments.DefaultMultipartBench(*quick))
		if err != nil {
			log.Fatalf("tssbench: multipart: %v", err)
		}
		chaosRes, err := experiments.RunChaosBench(experiments.DefaultChaosBench(*quick))
		if err != nil {
			log.Fatalf("tssbench: chaos: %v", err)
		}
		cacheRes, err := experiments.RunCacheBench(experiments.DefaultCacheBench(*quick))
		if err != nil {
			log.Fatalf("tssbench: cache: %v", err)
		}
		overloadRes, err := experiments.RunOverloadBench(experiments.DefaultOverloadBench(*quick))
		if err != nil {
			log.Fatalf("tssbench: overload: %v", err)
		}
		data, err := json.MarshalIndent(map[string]any{
			"obs":       obsRes,
			"pool":      poolRes,
			"integrity": intRes,
			"multipart": mpRes,
			"chaos":     chaosRes,
			"cache":     cacheRes,
			"overload":  overloadRes,
		}, "", "  ")
		if err != nil {
			log.Fatalf("tssbench: json: %v", err)
		}
		os.Stdout.Write(append(data, '\n'))
		fmt.Fprint(os.Stderr, obsRes.Render())
		fmt.Fprint(os.Stderr, poolRes.Render())
		fmt.Fprint(os.Stderr, intRes.Render())
		fmt.Fprint(os.Stderr, mpRes.Render())
		fmt.Fprint(os.Stderr, chaosRes.Render())
		fmt.Fprint(os.Stderr, cacheRes.Render())
		fmt.Fprint(os.Stderr, overloadRes.Render())
		if err := overloadRes.Bars(); err != nil {
			log.Fatalf("tssbench: overload: %v", err)
		}
		if chaosRes.TotalViolations > 0 {
			log.Fatalf("tssbench: chaos: %d invariant violations (replay coordinates in the report)", chaosRes.TotalViolations)
		}
		return
	}

	all := []string{"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "sp5", "fig9", "pool"}
	var list []string
	if *run == "all" {
		list = all
	} else {
		list = strings.Split(*run, ",")
	}

	for _, name := range list {
		name = strings.TrimSpace(name)
		start := time.Now()
		out, err := runOne(name, *quick, *clients)
		if err != nil {
			log.Fatalf("tssbench: %s: %v", name, err)
		}
		fmt.Println(out)
		fmt.Fprintf(os.Stderr, "[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}

func runOne(name string, quick bool, clients int) (string, error) {
	iters := 2000
	if quick {
		iters = 200
	}
	switch name {
	case "fig3":
		res, err := experiments.RunFig3(iters)
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	case "fig4":
		res, err := experiments.RunFig4(iters / 4)
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	case "fig5":
		res, err := experiments.RunFig5(nil)
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	case "fig6", "fig7", "fig8":
		res, err := experiments.RunScale(name)
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	case "sp5":
		cfg := workload.DefaultSP5()
		links := experiments.SP5Links{}
		if quick {
			cfg.Libraries, cfg.ConfigFiles, cfg.Events = 40, 20, 8
			links.WAN = quickWAN
		}
		res, err := experiments.RunSP5Table(cfg, links)
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	case "fig9":
		res, err := experiments.RunFig9(experiments.DefaultFig9())
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	case "cachesweep":
		return experiments.RunCacheSweep(3, nil).Render(), nil
	case "cache":
		res, err := experiments.RunCacheBench(experiments.DefaultCacheBench(quick))
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	case "obs":
		res, err := experiments.RunObsBench(experiments.DefaultObsBench(quick))
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	case "pool":
		res, err := experiments.RunPoolBench(experiments.DefaultPoolBench(quick, clients))
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	case "integrity":
		res, err := experiments.RunCorruptBench(experiments.DefaultCorruptBench(quick))
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	case "multipart":
		res, err := experiments.RunMultipartBench(experiments.DefaultMultipartBench(quick))
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	case "overload":
		res, err := experiments.RunOverloadBench(experiments.DefaultOverloadBench(quick))
		if err != nil {
			return "", err
		}
		if err := res.Bars(); err != nil {
			return res.Render(), err
		}
		return res.Render(), nil
	case "chaos":
		res, err := experiments.RunChaosBench(experiments.DefaultChaosBench(quick))
		if err != nil {
			return "", err
		}
		if res.TotalViolations > 0 {
			return res.Render(), fmt.Errorf("%d invariant violations", res.TotalViolations)
		}
		return res.Render(), nil
	}
	return "", fmt.Errorf("unknown experiment %q", name)
}

// quickWAN is the reduced-latency WAN profile used by -quick.
var quickWAN = experiments.QuickWAN
